package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// pcap constants (libpcap file format, the classic format every analyzer
// reads).
const (
	pcapMagic   = 0xa1b2c3d4
	pcapVMajor  = 2
	pcapVMinor  = 4
	pcapSnapLen = 65535
	// LinkTypeRaw means packets start at the IP header — exactly what the
	// measurement plane produces (no Ethernet framing inside GRE tunnels).
	LinkTypeRaw = 101
)

// PcapWriter writes raw-IP packets in libpcap format, so probe traffic can be
// inspected with tcpdump or Wireshark. Timestamps are virtual simulation
// times expressed as seconds/microseconds since the epoch.
type PcapWriter struct {
	w     io.Writer
	count int
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("netproto: pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket records one raw-IP packet at the given virtual timestamp.
func (p *PcapWriter) WritePacket(at time.Duration, pkt []byte) error {
	if len(pkt) > pcapSnapLen {
		return fmt.Errorf("netproto: packet of %d bytes exceeds snap length", len(pkt))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(hdr[4:], uint32((at%time.Second)/time.Microsecond))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pkt)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(pkt)))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(pkt); err != nil {
		return err
	}
	p.count++
	return nil
}

// Count returns the number of packets written.
func (p *PcapWriter) Count() int { return p.count }

// ReadPcap parses a file produced by PcapWriter (enough of the format for
// round-trip tests and tooling; not a general pcap reader).
func ReadPcap(r io.Reader) (linkType uint32, packets [][]byte, stamps []time.Duration, err error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, nil, fmt.Errorf("netproto: pcap header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != pcapMagic {
		return 0, nil, nil, fmt.Errorf("netproto: bad pcap magic %#x", magic)
	}
	linkType = binary.LittleEndian.Uint32(hdr[20:])
	for {
		var ph [16]byte
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			if err == io.EOF {
				return linkType, packets, stamps, nil
			}
			return 0, nil, nil, fmt.Errorf("netproto: pcap record header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(ph[8:])
		if caplen > pcapSnapLen {
			return 0, nil, nil, fmt.Errorf("netproto: pcap record of %d bytes", caplen)
		}
		pkt := make([]byte, caplen)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return 0, nil, nil, fmt.Errorf("netproto: pcap record body: %w", err)
		}
		packets = append(packets, pkt)
		sec := binary.LittleEndian.Uint32(ph[0:])
		usec := binary.LittleEndian.Uint32(ph[4:])
		stamps = append(stamps, time.Duration(sec)*time.Second+time.Duration(usec)*time.Microsecond)
	}
}
