// Package netproto implements the packet formats AnyOpt's measurement plane
// uses on the wire: IPv4 headers, ICMP echo messages carrying measurement
// timestamps, and GRE encapsulation for the orchestrator↔site tunnels.
//
// The design follows gopacket's layering discipline — each layer marshals
// and parses itself and exposes its payload — but uses only the standard
// library. Probes built here are byte-exact IPv4/ICMP/GRE packets; in the
// simulation they are carried by the bgp forwarding model instead of a NIC.
package netproto

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether data (which embeds its checksum field)
// checksums to zero, i.e. is internally consistent.
func VerifyChecksum(data []byte) bool {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return uint16(sum) == 0xffff
}
