package netproto

import (
	"fmt"
	"strings"
	"time"
)

// Dissect renders a human-readable, line-per-layer description of a raw-IP
// packet, following the layering the measurement plane uses:
// IPv4 → (GRE → IPv4)? → ICMP. Unknown payloads are summarized, not
// rejected, so Dissect is safe on any capture.
func Dissect(pkt []byte) string {
	var b strings.Builder
	dissectIPv4(&b, pkt, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func dissectIPv4(b *strings.Builder, pkt []byte, depth int) {
	hdr, payload, err := ParseIPv4(pkt)
	if err != nil {
		indent(b, depth)
		fmt.Fprintf(b, "IPv4: unparseable (%v)\n", err)
		return
	}
	indent(b, depth)
	fmt.Fprintf(b, "IPv4 %s → %s ttl=%d proto=%d len=%d\n",
		hdr.Src, hdr.Dst, hdr.TTL, hdr.Protocol, len(pkt))
	switch hdr.Protocol {
	case ProtoGRE:
		dissectGRE(b, payload, depth+1)
	case ProtoICMP:
		dissectICMP(b, payload, depth+1)
	default:
		indent(b, depth+1)
		fmt.Fprintf(b, "payload: %d bytes (protocol %d)\n", len(payload), hdr.Protocol)
	}
}

func dissectGRE(b *strings.Builder, pkt []byte, depth int) {
	gre, payload, err := ParseGRE(pkt)
	if err != nil {
		indent(b, depth)
		fmt.Fprintf(b, "GRE: unparseable (%v)\n", err)
		return
	}
	indent(b, depth)
	if gre.KeyPresent {
		siteKey := gre.Key & 0xffff
		ord := gre.Key >> 16
		fmt.Fprintf(b, "GRE key=%d (site tunnel %d, ingress ordinal %d) proto=%#04x\n",
			gre.Key, siteKey, ord, gre.Protocol)
	} else {
		fmt.Fprintf(b, "GRE (no key) proto=%#04x\n", gre.Protocol)
	}
	if gre.Protocol == EtherTypeIPv4 {
		dissectIPv4(b, payload, depth+1)
	} else {
		indent(b, depth+1)
		fmt.Fprintf(b, "payload: %d bytes\n", len(payload))
	}
}

func dissectICMP(b *strings.Builder, pkt []byte, depth int) {
	echo, err := ParseICMPEcho(pkt)
	if err != nil {
		indent(b, depth)
		fmt.Fprintf(b, "ICMP: unparseable (%v)\n", err)
		return
	}
	kind := "echo-request"
	if echo.Type == ICMPEchoReply {
		kind = "echo-reply"
	}
	indent(b, depth)
	fmt.Fprintf(b, "ICMP %s id=%d seq=%d", kind, echo.ID, echo.Seq)
	if ts, err := echo.DecodeTimestamp(); err == nil {
		fmt.Fprintf(b, " t=%v", time.Duration(ts).Round(time.Microsecond))
	}
	b.WriteByte('\n')
}
