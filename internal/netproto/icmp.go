package netproto

import (
	"encoding/binary"
	"fmt"
	"time"
)

// ICMP message types used by the prober.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// icmpEchoHeaderLen is type+code+checksum+id+seq.
const icmpEchoHeaderLen = 8

// ICMPEcho is an ICMP echo request or reply (RFC 792). AnyOpt's prober packs
// a transmit timestamp into the payload (like ping -T) so the orchestrator
// can compute RTT from the echoed copy without keeping per-probe state.
type ICMPEcho struct {
	Type uint8 // ICMPEchoRequest or ICMPEchoReply
	Code uint8
	ID   uint16
	Seq  uint16
	// Payload is the echo data. The prober puts the timestamp in the first
	// 8 bytes; targets echo it untouched.
	Payload []byte
}

// Marshal serializes the message with a computed checksum.
func (m *ICMPEcho) Marshal() []byte {
	return m.AppendMarshal(nil)
}

// AppendMarshal appends the serialized message to buf and returns the
// extended slice; see IPv4.AppendMarshal.
func (m *ICMPEcho) AppendMarshal(buf []byte) []byte {
	n := icmpEchoHeaderLen + len(m.Payload)
	buf = grow(buf, n)
	b := buf[len(buf)-n:]
	b[0] = m.Type
	b[1] = m.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[icmpEchoHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return buf
}

// ParseICMPEcho parses an echo request/reply and verifies its checksum. The
// returned Payload is an independent copy; Unmarshal is the zero-copy
// variant.
func ParseICMPEcho(data []byte) (*ICMPEcho, error) {
	m := new(ICMPEcho)
	if err := m.Unmarshal(data); err != nil {
		return nil, err
	}
	m.Payload = append([]byte(nil), m.Payload...)
	return m, nil
}

// Unmarshal parses an echo request/reply into m — which may live on the
// caller's stack — and verifies its checksum. Payload aliases data: valid
// only while the packet buffer is, so callers that retain it must copy.
func (m *ICMPEcho) Unmarshal(data []byte) error {
	if len(data) < icmpEchoHeaderLen {
		return fmt.Errorf("netproto: ICMP message truncated: %d bytes", len(data))
	}
	if t := data[0]; t != ICMPEchoRequest && t != ICMPEchoReply {
		return fmt.Errorf("netproto: ICMP type %d is not an echo message", t)
	}
	if !VerifyChecksum(data) {
		return fmt.Errorf("netproto: ICMP checksum mismatch")
	}
	*m = ICMPEcho{
		Type:    data[0],
		Code:    data[1],
		ID:      binary.BigEndian.Uint16(data[4:]),
		Seq:     binary.BigEndian.Uint16(data[6:]),
		Payload: data[icmpEchoHeaderLen:],
	}
	return nil
}

// Reply builds the echo reply for a request, echoing ID, Seq, and payload.
func (m *ICMPEcho) Reply() *ICMPEcho {
	return &ICMPEcho{
		Type:    ICMPEchoReply,
		Code:    0,
		ID:      m.ID,
		Seq:     m.Seq,
		Payload: append([]byte(nil), m.Payload...),
	}
}

// timestampLen is the number of payload bytes carrying the probe timestamp.
const timestampLen = 8

// EncodeTimestamp writes a virtual-time timestamp into the first bytes of an
// echo payload, allocating the payload if needed.
func (m *ICMPEcho) EncodeTimestamp(t time.Duration) {
	if len(m.Payload) < timestampLen {
		m.Payload = make([]byte, timestampLen)
	}
	binary.BigEndian.PutUint64(m.Payload, uint64(t))
}

// DecodeTimestamp reads the timestamp a probe carried.
func (m *ICMPEcho) DecodeTimestamp() (time.Duration, error) {
	if len(m.Payload) < timestampLen {
		return 0, fmt.Errorf("netproto: echo payload too short for timestamp: %d bytes", len(m.Payload))
	}
	return time.Duration(binary.BigEndian.Uint64(m.Payload)), nil
}
