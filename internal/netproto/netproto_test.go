package netproto

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic worked example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	sum := Checksum(data)
	// Appending the checksum should verify.
	withSum := append(append([]byte{}, 0x01, 0x02, 0x03, 0x00), byte(sum>>8), byte(sum))
	_ = withSum
	if sum == 0 {
		t.Skip("degenerate zero checksum")
	}
}

func TestPropertyChecksumDetectsBitFlips(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) < 4 {
			return true
		}
		// Embed checksum at offset 2 like ICMP does.
		data[2], data[3] = 0, 0
		sum := Checksum(data)
		data[2], data[3] = byte(sum>>8), byte(sum)
		if !VerifyChecksum(data) {
			return false
		}
		// Flip one bit somewhere; verification must fail (single-bit errors
		// are always caught by the ones-complement sum).
		i := int(idx) % len(data)
		data[i] ^= 0x40
		return !VerifyChecksum(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestIPv4RoundTrip(t *testing.T) {
	h := &IPv4{
		TOS: 0, ID: 0x1234, TTL: 64, Protocol: ProtoICMP,
		Src: addr("192.0.2.1"), Dst: addr("198.51.100.7"),
	}
	payload := []byte("hello anycast")
	pkt, err := h.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Protocol != h.Protocol ||
		got.TTL != h.TTL || got.ID != h.ID {
		t.Errorf("header mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestIPv4RejectsCorruption(t *testing.T) {
	h := &IPv4{TTL: 64, Protocol: ProtoICMP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	pkt, err := h.Marshal([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pkt[8] ^= 0xff // corrupt TTL; checksum must catch it
	if _, _, err := ParseIPv4(pkt); err == nil {
		t.Error("corrupted header parsed without error")
	}
}

func TestIPv4Errors(t *testing.T) {
	cases := map[string][]byte{
		"truncated": make([]byte, 10),
		"version6":  append([]byte{0x65}, make([]byte, 19)...),
		"bad IHL":   append([]byte{0x41}, make([]byte, 19)...),
	}
	for name, data := range cases {
		if _, _, err := ParseIPv4(data); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	h := &IPv4{Src: addr("::1"), Dst: addr("10.0.0.1")}
	if _, err := h.Marshal(nil); err == nil {
		t.Error("IPv6 source accepted by IPv4 marshal")
	}
	big := &IPv4{Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	if _, err := big.Marshal(make([]byte, 0x10000)); err == nil {
		t.Error("oversize packet accepted")
	}
}

func TestPropertyIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, src, dst [4]byte, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := &IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: ProtoICMP,
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst)}
		pkt, err := h.Marshal(payload)
		if err != nil {
			return false
		}
		got, gotPayload, err := ParseIPv4(pkt)
		if err != nil {
			return false
		}
		return got.TOS == tos && got.ID == id && got.TTL == ttl &&
			got.Src == h.Src && got.Dst == h.Dst && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	m := &ICMPEcho{Type: ICMPEchoRequest, ID: 0xbeef, Seq: 7, Payload: []byte("payload")}
	got, err := ParseICMPEcho(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestICMPReplyEchoesEverything(t *testing.T) {
	req := &ICMPEcho{Type: ICMPEchoRequest, ID: 1, Seq: 2, Payload: []byte{9, 9, 9}}
	rep := req.Reply()
	if rep.Type != ICMPEchoReply {
		t.Errorf("reply type = %d", rep.Type)
	}
	if rep.ID != req.ID || rep.Seq != req.Seq || !bytes.Equal(rep.Payload, req.Payload) {
		t.Error("reply did not echo request fields")
	}
	// Mutating the reply payload must not touch the request.
	rep.Payload[0] = 0
	if req.Payload[0] != 9 {
		t.Error("reply aliases request payload")
	}
}

func TestICMPChecksumCatchesCorruption(t *testing.T) {
	m := &ICMPEcho{Type: ICMPEchoRequest, ID: 3, Seq: 4, Payload: []byte("x")}
	b := m.Marshal()
	b[len(b)-1] ^= 0x01
	if _, err := ParseICMPEcho(b); err == nil {
		t.Error("corrupted ICMP parsed without error")
	}
}

func TestICMPRejectsNonEcho(t *testing.T) {
	b := make([]byte, 8)
	b[0] = 3 // destination unreachable
	if _, err := ParseICMPEcho(b); err == nil {
		t.Error("non-echo type accepted")
	}
	if _, err := ParseICMPEcho(b[:4]); err == nil {
		t.Error("truncated ICMP accepted")
	}
}

func TestICMPTimestamp(t *testing.T) {
	m := &ICMPEcho{Type: ICMPEchoRequest}
	ts := 1234567 * time.Microsecond
	m.EncodeTimestamp(ts)
	got, err := m.DecodeTimestamp()
	if err != nil {
		t.Fatal(err)
	}
	if got != ts {
		t.Errorf("timestamp = %v, want %v", got, ts)
	}
	// Must survive marshal → parse → reply.
	rep, err := ParseICMPEcho(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err = rep.Reply().DecodeTimestamp()
	if err != nil {
		t.Fatal(err)
	}
	if got != ts {
		t.Errorf("timestamp after echo = %v, want %v", got, ts)
	}
}

func TestTimestampTooShort(t *testing.T) {
	m := &ICMPEcho{Payload: []byte{1, 2}}
	if _, err := m.DecodeTimestamp(); err == nil {
		t.Error("short payload decoded a timestamp")
	}
}

func TestGRERoundTripWithKey(t *testing.T) {
	g := &GRE{Protocol: EtherTypeIPv4, KeyPresent: true, Key: 42}
	payload := []byte("inner packet")
	got, gotPayload, err := ParseGRE(g.Marshal(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !got.KeyPresent || got.Key != 42 || got.Protocol != EtherTypeIPv4 {
		t.Errorf("GRE mismatch: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload mismatch")
	}
}

func TestGRERoundTripNoKey(t *testing.T) {
	g := &GRE{Protocol: EtherTypeIPv4}
	got, payload, err := ParseGRE(g.Marshal([]byte{0xab}))
	if err != nil {
		t.Fatal(err)
	}
	if got.KeyPresent {
		t.Error("key present flag leaked")
	}
	if len(payload) != 1 || payload[0] != 0xab {
		t.Error("payload mismatch")
	}
}

func TestGREErrors(t *testing.T) {
	if _, _, err := ParseGRE([]byte{0x20, 0x00, 0x08}); err == nil {
		t.Error("truncated GRE accepted")
	}
	if _, _, err := ParseGRE([]byte{0x20, 0x00, 0x08, 0x00}); err == nil {
		t.Error("GRE with K bit but no key accepted")
	}
	if _, _, err := ParseGRE([]byte{0x00, 0x01, 0x08, 0x00}); err == nil {
		t.Error("GRE version 1 accepted")
	}
	if _, _, err := ParseGRE([]byte{0x80, 0x00, 0x08, 0x00, 0, 0, 0, 0}); err == nil {
		t.Error("GRE with checksum flag accepted")
	}
}

// TestFullProbeStack exercises the exact encapsulation the orchestrator
// builds: IPv4(GRE(IPv4(ICMP echo request with timestamp))).
func TestFullProbeStack(t *testing.T) {
	echo := &ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 3}
	echo.EncodeTimestamp(42 * time.Millisecond)

	inner := &IPv4{TTL: 64, Protocol: ProtoICMP,
		Src: addr("203.0.113.1"), Dst: addr("10.1.2.3")} // anycast src, target dst
	innerPkt, err := inner.Marshal(echo.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	gre := &GRE{Protocol: EtherTypeIPv4, KeyPresent: true, Key: 5}
	outer := &IPv4{TTL: 64, Protocol: ProtoGRE,
		Src: addr("192.0.2.10"), Dst: addr("192.0.2.20")} // orchestrator → site
	wire, err := outer.Marshal(gre.Marshal(innerPkt))
	if err != nil {
		t.Fatal(err)
	}

	// Site router: strip outer + GRE, forward inner.
	oh, gpkt, err := ParseIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if oh.Protocol != ProtoGRE {
		t.Fatalf("outer protocol = %d", oh.Protocol)
	}
	g, ipkt, err := ParseGRE(gpkt)
	if err != nil {
		t.Fatal(err)
	}
	if g.Key != 5 {
		t.Errorf("tunnel key = %d", g.Key)
	}
	ih, icmpBytes, err := ParseIPv4(ipkt)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Src != addr("203.0.113.1") {
		t.Errorf("inner src = %v, want anycast address", ih.Src)
	}
	m, err := ParseICMPEcho(icmpBytes)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.DecodeTimestamp()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 42*time.Millisecond {
		t.Errorf("timestamp = %v", ts)
	}
}

func BenchmarkProbeMarshal(b *testing.B) {
	echo := &ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 3}
	echo.EncodeTimestamp(42 * time.Millisecond)
	inner := &IPv4{TTL: 64, Protocol: ProtoICMP, Src: addr("203.0.113.1"), Dst: addr("10.1.2.3")}
	for i := 0; i < b.N; i++ {
		pkt, err := inner.Marshal(echo.Marshal())
		if err != nil {
			b.Fatal(err)
		}
		_ = pkt
	}
}

func TestDissectFullStack(t *testing.T) {
	echo := &ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 3}
	echo.EncodeTimestamp(42 * time.Millisecond)
	inner := &IPv4{TTL: 64, Protocol: ProtoICMP, Src: addr("203.0.113.10"), Dst: addr("10.1.2.3")}
	innerPkt, err := inner.Marshal(echo.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gre := &GRE{Protocol: EtherTypeIPv4, KeyPresent: true, Key: 0x00020005} // site 5, ordinal 2
	outer := &IPv4{TTL: 62, Protocol: ProtoGRE, Src: addr("192.0.2.10"), Dst: addr("192.0.2.1")}
	wire, err := outer.Marshal(gre.Marshal(innerPkt))
	if err != nil {
		t.Fatal(err)
	}
	out := Dissect(wire)
	for _, want := range []string{
		"IPv4 192.0.2.10 → 192.0.2.1",
		"GRE key=131077 (site tunnel 5, ingress ordinal 2)",
		"IPv4 203.0.113.10 → 10.1.2.3",
		"ICMP echo-request id=77 seq=3 t=42ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dissection missing %q:\n%s", want, out)
		}
	}
}

func TestDissectGarbageIsSafe(t *testing.T) {
	for _, pkt := range [][]byte{nil, {1}, make([]byte, 20), []byte("hello world padding pad")} {
		out := Dissect(pkt)
		if out == "" {
			t.Errorf("empty dissection for %x", pkt)
		}
		if !strings.Contains(out, "unparseable") && !strings.Contains(out, "IPv4") {
			t.Errorf("odd dissection: %s", out)
		}
	}
}

func TestDissectUnknownProtocol(t *testing.T) {
	h := &IPv4{TTL: 9, Protocol: 17, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	pkt, err := h.Marshal([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := Dissect(pkt)
	if !strings.Contains(out, "payload: 3 bytes (protocol 17)") {
		t.Errorf("dissection:\n%s", out)
	}
}
