package netproto

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by the measurement plane.
const (
	ProtoICMP = 1
	ProtoGRE  = 47
)

// IPv4HeaderLen is the length of a header without options; we never emit
// options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header (RFC 791) without options.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
}

// Marshal serializes the header followed by payload. TotalLength and the
// header checksum are computed here.
func (h *IPv4) Marshal(payload []byte) ([]byte, error) {
	return h.AppendMarshal(nil, payload)
}

// AppendMarshal appends the serialized header followed by payload to buf and
// returns the extended slice, letting hot paths reuse one packet buffer
// across probes instead of allocating per packet.
func (h *IPv4) AppendMarshal(buf, payload []byte) ([]byte, error) {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return nil, fmt.Errorf("netproto: IPv4 marshal requires 4-byte addresses (src=%v dst=%v)", h.Src, h.Dst)
	}
	total := IPv4HeaderLen + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("netproto: IPv4 packet too large: %d bytes", total)
	}
	buf = grow(buf, total)
	b := buf[len(buf)-total:]
	b[0] = 4<<4 | IPv4HeaderLen/4 // version + IHL
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], h.ID)
	frag := uint16(h.Flags&0x7)<<13 | h.FragOff&0x1fff
	binary.BigEndian.PutUint16(b[6:], frag)
	b[8] = h.TTL
	b[9] = h.Protocol
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], payload)
	return buf, nil
}

// ParseIPv4 parses an IPv4 packet, returning the header and its payload
// (sliced from data, not copied).
func ParseIPv4(data []byte) (*IPv4, []byte, error) {
	h := new(IPv4)
	payload, err := h.Unmarshal(data)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// Unmarshal parses an IPv4 packet into h — which may live on the caller's
// stack, avoiding ParseIPv4's allocation — and returns the payload (sliced
// from data, not copied).
func (h *IPv4) Unmarshal(data []byte) ([]byte, error) {
	if len(data) < IPv4HeaderLen {
		return nil, fmt.Errorf("netproto: IPv4 packet truncated: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("netproto: IP version %d, want 4", v)
	}
	ihl := int(data[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return nil, fmt.Errorf("netproto: bad IHL %d", ihl)
	}
	if !VerifyChecksum(data[:ihl]) {
		return nil, fmt.Errorf("netproto: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total < ihl || total > len(data) {
		return nil, fmt.Errorf("netproto: total length %d out of range (%d bytes available)", total, len(data))
	}
	frag := binary.BigEndian.Uint16(data[6:])
	*h = IPv4{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:]),
		Flags:    uint8(frag >> 13),
		FragOff:  frag & 0x1fff,
		TTL:      data[8],
		Protocol: data[9],
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
	}
	return data[ihl:total], nil
}

// grow extends b by n bytes (zeroing nothing; callers overwrite the region)
// and returns the extended slice.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*(len(b)+n))
	copy(nb, b)
	return nb
}
