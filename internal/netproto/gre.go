package netproto

import (
	"encoding/binary"
	"fmt"
)

// EtherTypeIPv4 is the GRE protocol type for an encapsulated IPv4 packet.
const EtherTypeIPv4 = 0x0800

// GRE is a generic routing encapsulation header (RFC 2784 with the optional
// RFC 2890 key field). The testbed uses a GRE tunnel per anycast site; the
// key identifies the tunnel, which is how the orchestrator learns which site
// — and therefore which catchment — a reply came back through (§3.1).
type GRE struct {
	// Protocol is the EtherType of the payload.
	Protocol uint16
	// KeyPresent indicates the key field is carried.
	KeyPresent bool
	// Key identifies the tunnel.
	Key uint32
}

// Marshal serializes the header followed by payload.
func (g *GRE) Marshal(payload []byte) []byte {
	return g.AppendMarshal(nil, payload)
}

// AppendMarshal appends the serialized header followed by payload to buf and
// returns the extended slice; see IPv4.AppendMarshal.
func (g *GRE) AppendMarshal(buf, payload []byte) []byte {
	n := 4
	if g.KeyPresent {
		n += 4
	}
	buf = grow(buf, n+len(payload))
	b := buf[len(buf)-n-len(payload):]
	b[0] = 0
	if g.KeyPresent {
		b[0] = 0x20 // K bit
	}
	b[1] = 0 // version 0
	binary.BigEndian.PutUint16(b[2:], g.Protocol)
	if g.KeyPresent {
		binary.BigEndian.PutUint32(b[4:], g.Key)
	}
	copy(b[n:], payload)
	return buf
}

// ParseGRE parses a GRE header and returns it with the payload (sliced from
// data, not copied).
func ParseGRE(data []byte) (*GRE, []byte, error) {
	g := new(GRE)
	payload, err := g.Unmarshal(data)
	if err != nil {
		return nil, nil, err
	}
	return g, payload, nil
}

// Unmarshal parses a GRE header into g — which may live on the caller's
// stack, avoiding ParseGRE's allocation — and returns the payload (sliced
// from data, not copied).
func (g *GRE) Unmarshal(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("netproto: GRE header truncated: %d bytes", len(data))
	}
	flags := data[0]
	if ver := data[1] & 0x07; ver != 0 {
		return nil, fmt.Errorf("netproto: GRE version %d unsupported", ver)
	}
	if flags&0x80 != 0 {
		return nil, fmt.Errorf("netproto: GRE checksum flag unsupported")
	}
	if flags&0x10 != 0 {
		return nil, fmt.Errorf("netproto: GRE sequence flag unsupported")
	}
	*g = GRE{Protocol: binary.BigEndian.Uint16(data[2:])}
	off := 4
	if flags&0x20 != 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("netproto: GRE key truncated")
		}
		g.KeyPresent = true
		g.Key = binary.BigEndian.Uint32(data[4:])
		off = 8
	}
	return data[off:], nil
}
