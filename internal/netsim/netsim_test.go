package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"anyopt/internal/topology"
)

func TestScheduleAndRunOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-timestamp events not FIFO: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var e Engine
	var fired time.Duration
	e.Schedule(100*time.Millisecond, func() {
		e.After(50*time.Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150*time.Millisecond {
		t.Errorf("nested After fired at %v, want 150ms", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for already-canceled event")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	var e Engine
	ev := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for event that already fired")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	ev := e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	n := e.RunUntil(20 * time.Millisecond)
	if n != 2 {
		t.Fatalf("RunUntil executed %d, want 2", n)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	var e Engine
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	var e Engine
	e.Schedule(time.Second, func() {})
	e.RunFor(500 * time.Millisecond)
	if e.Now() != 500*time.Millisecond {
		t.Errorf("Now = %v, want 500ms", e.Now())
	}
	e.RunFor(time.Second)
	if e.Pending() != 0 {
		t.Errorf("event at 1s did not fire by 1.5s")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(time.Millisecond, func() {})
}

func TestNilRunPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil run did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

// Property: for any random set of delays, events fire in nondecreasing time
// order and all fire exactly once.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		var e Engine
		var fired []time.Duration
		for _, d := range delaysMS {
			at := time.Duration(d) * time.Millisecond
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two engines fed the same schedule execute identically.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var trace []time.Duration
		var add func(depth int)
		add = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				trace = append(trace, e.Now())
				if rng.Intn(2) == 0 {
					add(depth + 1)
				}
			})
		}
		for i := 0; i < 20; i++ {
			add(0)
		}
		e.Run()
		return trace
	}
	for seed := int64(0); seed < 10; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		e.Run()
	}
}

// recorder implements Handler, logging each payload it receives.
type recorder struct {
	at     []time.Duration
	prefix []int32
	dst    []topology.ASN
	med    []int32
	paths  [][]topology.ASN
	engine *Engine
}

func (r *recorder) HandleEvent(p *Payload) {
	r.at = append(r.at, r.engine.Now())
	r.prefix = append(r.prefix, p.Prefix)
	r.dst = append(r.dst, p.Dst)
	r.med = append(r.med, p.MED)
	// The payload is only valid during the call: copy the path out.
	r.paths = append(r.paths, append([]topology.ASN(nil), p.Path...))
}

func TestTypedEventDispatch(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e}
	path := []topology.ASN{10, 20, 30}
	e.ScheduleEvent(20*time.Millisecond, r, Payload{Prefix: 7, Dst: 42, MED: 5, Path: path})
	e.AfterEvent(10*time.Millisecond, r, Payload{Prefix: 3, Dst: 99, MED: -1})
	if n := e.Run(); n != 2 {
		t.Fatalf("Run executed %d events, want 2", n)
	}
	if len(r.at) != 2 || r.at[0] != 10*time.Millisecond || r.at[1] != 20*time.Millisecond {
		t.Fatalf("fire times = %v, want [10ms 20ms]", r.at)
	}
	if r.prefix[0] != 3 || r.dst[0] != 99 || r.med[0] != -1 || r.paths[0] != nil {
		t.Errorf("first payload = prefix %d dst %d med %d path %v", r.prefix[0], r.dst[0], r.med[0], r.paths[0])
	}
	if r.prefix[1] != 7 || r.dst[1] != 42 || r.med[1] != 5 || len(r.paths[1]) != 3 {
		t.Errorf("second payload = prefix %d dst %d med %d path %v", r.prefix[1], r.dst[1], r.med[1], r.paths[1])
	}
}

func TestTypedAndClosureEventsShareOrdering(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e}
	var order []string
	e.ScheduleEvent(time.Second, r, Payload{Prefix: 1})
	e.Schedule(time.Second, func() { order = append(order, "closure") })
	e.ScheduleEvent(time.Second, r, Payload{Prefix: 2})
	e.Run()
	// FIFO among equal timestamps must hold across both flavors: the typed
	// event scheduled first fires first, the closure second, typed third.
	if len(r.at) != 2 || len(order) != 1 {
		t.Fatalf("dispatch counts: typed %d closure %d", len(r.at), len(order))
	}
	if r.prefix[0] != 1 || r.prefix[1] != 2 {
		t.Fatalf("typed order = %v, want [1 2]", r.prefix)
	}
}

func TestNilHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.ScheduleEvent(0, nil, Payload{})
}

func TestCancelTypedEvent(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e}
	ev := e.ScheduleEvent(time.Second, r, Payload{Prefix: 1})
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending typed event")
	}
	e.Run()
	if len(r.at) != 0 {
		t.Fatal("canceled typed event still dispatched")
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e}
	// Warm the pool past its high-water mark.
	for i := 0; i < 2*eventBlock; i++ {
		e.ScheduleEvent(e.Now(), r, Payload{})
	}
	e.Run()
	r.at, r.prefix, r.dst, r.med, r.paths = nil, nil, nil, nil, nil
	h := noopHandler{}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < eventBlock; i++ {
			e.AfterEvent(time.Duration(i)*time.Millisecond, h, Payload{Prefix: int32(i)})
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+run allocated %.1f times per round, want 0", allocs)
	}
}

type noopHandler struct{}

func (noopHandler) HandleEvent(*Payload) {}

func TestReset(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() { fired++ })
	e.Step()
	e.Reset()
	if fired != 1 {
		t.Fatalf("fired = %d before Reset assertions, want 1", fired)
	}
	if e.Now() != 0 || e.Steps() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: Now=%v Steps=%d Pending=%d, want all zero", e.Now(), e.Steps(), e.Pending())
	}
	// The discarded pending event must not fire, and the reused engine must
	// behave exactly like a fresh one: FIFO order restarts from sequence 0.
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("discarded event fired after Reset")
	}
	if !sort.IntsAreSorted(got) || len(got) != 10 {
		t.Fatalf("post-Reset FIFO order broken: %v", got)
	}
	if e.Now() != time.Millisecond {
		t.Errorf("post-Reset Now = %v, want 1ms", e.Now())
	}
}

// Property: the 4-ary heap agrees with a sort-based oracle on arbitrary
// interleavings of schedules and cancels.
func TestPropertyHeapMatchesOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		var e Engine
		r := &recorder{engine: &e}
		type planned struct {
			at  time.Duration
			seq int
		}
		var live []planned
		var handles []*Event
		seq := 0
		for _, op := range ops {
			if op%5 == 4 && len(handles) > 0 {
				// Cancel a pending event chosen by the op value.
				k := int(op/5) % len(handles)
				if e.Cancel(handles[k]) {
					live = append(live[:k], live[k+1:]...)
					handles = append(handles[:k], handles[k+1:]...)
				}
				continue
			}
			at := time.Duration(op%97) * time.Millisecond
			handles = append(handles, e.ScheduleEvent(at, r, Payload{Prefix: int32(seq)}))
			live = append(live, planned{at, seq})
			seq++
		}
		sort.SliceStable(live, func(i, j int) bool { return live[i].at < live[j].at })
		e.Run()
		if len(r.prefix) != len(live) {
			return false
		}
		for i, p := range live {
			if r.at[i] != p.at || r.prefix[i] != int32(p.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRunTyped(b *testing.B) {
	var e Engine
	h := noopHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			e.ScheduleEvent(e.Now()+time.Duration(j%97)*time.Millisecond, h, Payload{Prefix: int32(j)})
		}
		e.Run()
	}
}
