package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-timestamp events not FIFO: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var e Engine
	var fired time.Duration
	e.Schedule(100*time.Millisecond, func() {
		e.After(50*time.Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150*time.Millisecond {
		t.Errorf("nested After fired at %v, want 150ms", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for already-canceled event")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	var e Engine
	ev := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for event that already fired")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	ev := e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	n := e.RunUntil(20 * time.Millisecond)
	if n != 2 {
		t.Fatalf("RunUntil executed %d, want 2", n)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	var e Engine
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	var e Engine
	e.Schedule(time.Second, func() {})
	e.RunFor(500 * time.Millisecond)
	if e.Now() != 500*time.Millisecond {
		t.Errorf("Now = %v, want 500ms", e.Now())
	}
	e.RunFor(time.Second)
	if e.Pending() != 0 {
		t.Errorf("event at 1s did not fire by 1.5s")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(time.Millisecond, func() {})
}

func TestNilRunPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil run did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

// Property: for any random set of delays, events fire in nondecreasing time
// order and all fire exactly once.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		var e Engine
		var fired []time.Duration
		for _, d := range delaysMS {
			at := time.Duration(d) * time.Millisecond
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two engines fed the same schedule execute identically.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var trace []time.Duration
		var add func(depth int)
		add = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				trace = append(trace, e.Now())
				if rng.Intn(2) == 0 {
					add(depth + 1)
				}
			})
		}
		for i := 0; i < 20; i++ {
			add(0)
		}
		e.Run()
		return trace
	}
	for seed := int64(0); seed < 10; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		e.Run()
	}
}
