// Package netsim provides a deterministic discrete-event simulation engine.
//
// The engine drives the BGP route-propagation simulator: every route
// advertisement, withdrawal, and timer expiry is an Event scheduled at a
// virtual timestamp. Events fire in (time, sequence) order, so two runs with
// the same inputs produce byte-identical traces. Virtual time is a
// time.Duration offset from the simulation epoch; no wall-clock time is ever
// consulted, which lets a simulated "two hours between BGP experiments"
// complete in microseconds of real time.
//
// Events come in two flavors sharing one pool and one queue:
//
//   - closure events (Schedule/After) for cold paths: tests, deployment
//     spacing, orchestrator timers. Each costs the caller's closure.
//   - typed events (ScheduleEvent/AfterEvent) for the hot path: a Payload
//     describing one BGP update in flight, dispatched to a Handler. These
//     allocate nothing in steady state — fired events return to an intrusive
//     free list and are reused by later schedules.
package netsim

import (
	"fmt"
	"time"

	"anyopt/internal/topology"
)

// Payload is the typed cargo of a pooled event: one BGP update (or
// withdrawal) in flight on a link. The engine does not interpret it; it is
// handed to the Handler the event was scheduled with.
type Payload struct {
	// Link is the link the update travels on.
	Link *topology.Link
	// Path is the announced AS path; nil marks a withdrawal.
	Path []topology.ASN
	// Dst is the AS receiving the update.
	Dst topology.ASN
	// Prefix identifies the announced prefix.
	Prefix int32
	// MED is the multi-exit discriminator carried by the update.
	MED int32
}

// Handler consumes a typed event when it fires. The *Payload points into
// pooled event storage: it is valid only for the duration of the call and
// must not be retained.
type Handler interface {
	HandleEvent(p *Payload)
}

// Event is a unit of work scheduled on the Engine. Events are pooled: the
// handle returned by Schedule is valid for Cancel only until the event fires,
// after which the engine recycles it for a future schedule.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration

	run     func()  // closure mode; nil for typed events
	handler Handler // typed mode; nil for closure events
	payload Payload

	seq  uint64 // tie-breaker: FIFO among events with equal At
	idx  int32  // queue position; -1 when not queued
	free *Event // intrusive free-list link while recycled
}

// eventBlock is how many pooled events are carved per allocation. Convergence
// bursts grow the pool a few block at a time; after the high-water mark,
// scheduling never allocates.
const eventBlock = 64

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use; the
// simulation model is single-threaded by design so that event ordering — which
// the BGP arrival-order tie-breaker depends on — is reproducible.
type Engine struct {
	queue    []*Event // 4-ary min-heap on (At, seq)
	freeList *Event
	now      time.Duration
	nextSeq  uint64
	steps    uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues run to execute at absolute virtual time at. Scheduling in
// the past (before Now) is an error in the model and panics: it would make
// event order depend on scheduling order rather than timestamps.
func (e *Engine) Schedule(at time.Duration, run func()) *Event {
	if run == nil {
		panic("netsim: Schedule with nil run")
	}
	ev := e.schedule(at)
	ev.run = run
	return ev
}

// ScheduleEvent enqueues a typed event for h at absolute virtual time at.
// The payload is copied into pooled event storage, so the caller need not
// keep p alive.
func (e *Engine) ScheduleEvent(at time.Duration, h Handler, p Payload) *Event {
	if h == nil {
		panic("netsim: ScheduleEvent with nil handler")
	}
	ev := e.schedule(at)
	ev.handler = h
	ev.payload = p
	return ev
}

// schedule validates at, takes an event from the pool, stamps it, and queues
// it. The caller fills in the closure or handler.
func (e *Engine) schedule(at time.Duration) *Event {
	if at < e.now {
		panic(fmt.Sprintf("netsim: Schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.At = at
	ev.seq = e.nextSeq
	e.nextSeq++
	e.push(ev)
	return ev
}

// After enqueues run to execute d after the current virtual time.
func (e *Engine) After(d time.Duration, run func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("netsim: After with negative delay %v", d))
	}
	return e.Schedule(e.now+d, run)
}

// AfterEvent enqueues a typed event for h to fire d after the current
// virtual time.
func (e *Engine) AfterEvent(d time.Duration, h Handler, p Payload) *Event {
	if d < 0 {
		panic(fmt.Sprintf("netsim: After with negative delay %v", d))
	}
	return e.ScheduleEvent(e.now+d, h, p)
}

// Cancel removes a scheduled event. Canceling an event that already fired or
// was already canceled is a no-op and returns false. A handle must not be
// canceled after its event fires if any schedule has happened since: the
// engine reuses fired events, so a stale handle may by then name a different
// pending event.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 || int(ev.idx) >= len(e.queue) || e.queue[ev.idx] != ev {
		return false
	}
	e.remove(int(ev.idx))
	e.recycle(ev)
	return true
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.At
	e.steps++
	if ev.run != nil {
		ev.run()
	} else {
		ev.handler.HandleEvent(&ev.payload)
	}
	e.recycle(ev)
	return true
}

// Run executes events until the queue drains and returns the number executed.
func (e *Engine) Run() uint64 {
	start := e.steps
	for e.Step() {
	}
	return e.steps - start
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (even if no event fired exactly then). Events scheduled
// after deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) uint64 {
	start := e.steps
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.steps - start
}

// RunFor executes events for the next d of virtual time.
func (e *Engine) RunFor(d time.Duration) uint64 {
	return e.RunUntil(e.now + d)
}

// Reset returns the engine to its initial state — empty queue, virtual time
// zero, sequence and step counters zero — while keeping the queue's backing
// array and the event free list, so a reused engine schedules without
// allocating. Pending events are discarded (recycled, not fired).
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		e.queue[i] = nil
		e.recycle(ev)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.nextSeq = 0
	e.steps = 0
}

// alloc takes an event from the free list, carving a fresh block when empty.
func (e *Engine) alloc() *Event {
	if e.freeList == nil {
		block := make([]Event, eventBlock)
		for i := range block {
			block[i].idx = -1
			block[i].free = e.freeList
			e.freeList = &block[i]
		}
	}
	ev := e.freeList
	e.freeList = ev.free
	ev.free = nil
	return ev
}

// recycle clears an event's references (so pooled storage does not pin
// closures, handlers, or AS paths) and pushes it on the free list.
func (e *Engine) recycle(ev *Event) {
	ev.run = nil
	ev.handler = nil
	ev.payload = Payload{}
	ev.idx = -1
	ev.free = e.freeList
	e.freeList = ev
}

// The queue is a hand-rolled 4-ary min-heap on (At, seq). Relative to
// container/heap this removes the interface boxing per operation and halves
// the tree depth; sift-down compares at most four children per level, all in
// adjacent cache lines.
const heapArity = 4

func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.queue[i], e.queue[j] = e.queue[j], e.queue[i]
	e.queue[i].idx = int32(i)
	e.queue[j].idx = int32(j)
}

func (e *Engine) push(ev *Event) {
	ev.idx = int32(len(e.queue))
	e.queue = append(e.queue, ev)
	e.up(len(e.queue) - 1)
}

func (e *Engine) pop() *Event {
	ev := e.queue[0]
	last := len(e.queue) - 1
	if last > 0 {
		e.queue[0] = e.queue[last]
		e.queue[0].idx = 0
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if last > 0 {
		e.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at queue position i (Cancel's path).
func (e *Engine) remove(i int) {
	last := len(e.queue) - 1
	if i != last {
		e.queue[i] = e.queue[last]
		e.queue[i].idx = int32(i)
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if i < last {
		e.down(i)
		e.up(i)
	}
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.less(i, parent) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.queue)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(c, min) {
				min = c
			}
		}
		if !e.less(min, i) {
			return
		}
		e.swap(i, min)
		i = min
	}
}
