// Package netsim provides a deterministic discrete-event simulation engine.
//
// The engine drives the BGP route-propagation simulator: every route
// advertisement, withdrawal, and timer expiry is an Event scheduled at a
// virtual timestamp. Events fire in (time, sequence) order, so two runs with
// the same inputs produce byte-identical traces. Virtual time is a
// time.Duration offset from the simulation epoch; no wall-clock time is ever
// consulted, which lets a simulated "two hours between BGP experiments"
// complete in microseconds of real time.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a unit of work scheduled on the Engine.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Run executes the event. It may schedule further events.
	Run func()

	seq uint64 // tie-breaker: FIFO among events with equal At
	idx int    // heap index
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use; the
// simulation model is single-threaded by design so that event ordering — which
// the BGP arrival-order tie-breaker depends on — is reproducible.
type Engine struct {
	queue   eventQueue
	now     time.Duration
	nextSeq uint64
	steps   uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule enqueues run to execute at absolute virtual time at. Scheduling in
// the past (before Now) is an error in the model and panics: it would make
// event order depend on scheduling order rather than timestamps.
func (e *Engine) Schedule(at time.Duration, run func()) *Event {
	if run == nil {
		panic("netsim: Schedule with nil run")
	}
	if at < e.now {
		panic(fmt.Sprintf("netsim: Schedule at %v before now %v", at, e.now))
	}
	ev := &Event{At: at, Run: run, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues run to execute d after the current virtual time.
func (e *Engine) After(d time.Duration, run func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("netsim: After with negative delay %v", d))
	}
	return e.Schedule(e.now+d, run)
}

// Cancel removes a scheduled event. Canceling an event that already fired or
// was already canceled is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.queue) || e.queue[ev.idx] != ev {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	return true
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.steps++
	ev.Run()
	return true
}

// Run executes events until the queue drains and returns the number executed.
func (e *Engine) Run() uint64 {
	start := e.steps
	for e.Step() {
	}
	return e.steps - start
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (even if no event fired exactly then). Events scheduled
// after deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) uint64 {
	start := e.steps
	for e.queue.Len() > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.steps - start
}

// RunFor executes events for the next d of virtual time.
func (e *Engine) RunFor(d time.Duration) uint64 {
	return e.RunUntil(e.now + d)
}

// eventQueue is a min-heap on (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
