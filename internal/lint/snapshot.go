package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkSnapImmut enforces the snapshot immutability invariant (DESIGN.md
// §10/§11): once a campaign snapshot is published through an atomic pointer,
// any number of goroutines read it with no locking — which is only sound if
// nothing ever writes to it again. The storm test catches a violation when it
// happens to race; this check refuses to compile one in.
//
// For each configured snapshot type the analyzer flags, outside the type's
// sanctioned writers:
//
//   - direct field writes: snap.Field = v, snap.Field += v, snap.Field++
//   - deep stores through snapshot-reachable state: snap.M[k] = v,
//     snap.Slice[i] = v, snap.Ptr.X = v, *snap = S{}, delete(snap.M, k),
//     clear(snap.M)
//   - aliased stores: q := snap.M; q[k] = v — locals of reference type
//     assigned from snapshot-reachable expressions are tainted within the
//     function, and stores through them report at the store site
//   - aliasing leaks: returning a snapshot-owned map or slice field, or
//     storing one into a struct field, composite literal, or package-level
//     variable, hands mutable state to code the invariant cannot see
//
// Sanctioned writers are the functions named in the rule's Writers set plus
// any function in the snapshot type's own package whose results include the
// snapshot type (its constructors); both must be declared in the type's
// package. The analysis is intraprocedural: values passed into calls cross
// its horizon, which is exactly why leaking aliases out of the snapshot is
// itself a finding. Suppress a finding only with
// `//lint:mutinvariant <reason>`.
func checkSnapImmut(pkg *Package, ann *annotations, rules []SnapshotRule) []Diagnostic {
	c := &snapImmutChecker{pkg: pkg, ann: ann, rules: rules}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if c.isSanctionedWriter(fn) {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return c.diags
}

// SnapshotRule configures one immutable snapshot type for checkSnapImmut.
type SnapshotRule struct {
	// Type is the qualified type name: "<import path>.<Name>", e.g.
	// "anyopt.Snapshot".
	Type string
	// Writers names the functions allowed to mutate the type; they must be
	// declared in the type's own package. Constructors (functions in that
	// package returning the type) are sanctioned implicitly.
	Writers map[string]bool
}

// pkgPath returns the import-path half of the qualified type name.
func (r SnapshotRule) pkgPath() string {
	if i := strings.LastIndex(r.Type, "."); i >= 0 {
		return r.Type[:i]
	}
	return ""
}

// DefaultSnapshotRules protects anyopt.Snapshot, the lock-free serving
// path's load-bearing immutable: InstallCampaign and its row-patching sibling
// PatchCampaign are its only write points.
var DefaultSnapshotRules = []SnapshotRule{
	{Type: "anyopt.Snapshot", Writers: map[string]bool{"InstallCampaign": true, "PatchCampaign": true}},
}

type snapImmutChecker struct {
	pkg   *Package
	ann   *annotations
	rules []SnapshotRule
	diags []Diagnostic

	// tainted holds reference-typed locals aliasing snapshot-reachable state
	// in the function currently being checked.
	tainted map[types.Object]bool
}

// snapshotRule resolves t (possibly behind one pointer) to a configured
// snapshot rule.
func (c *snapImmutChecker) snapshotRule(t types.Type) (SnapshotRule, bool) {
	if t == nil {
		return SnapshotRule{}, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return SnapshotRule{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return SnapshotRule{}, false
	}
	qual := obj.Pkg().Path() + "." + obj.Name()
	for _, r := range c.rules {
		if r.Type == qual {
			return r, true
		}
	}
	return SnapshotRule{}, false
}

// isSanctionedWriter reports whether fn may mutate a snapshot: a listed
// writer or a constructor, declared in the snapshot type's package.
func (c *snapImmutChecker) isSanctionedWriter(fn *ast.FuncDecl) bool {
	for _, r := range c.rules {
		if c.pkg.Path != r.pkgPath() {
			continue
		}
		if r.Writers[fn.Name.Name] {
			return true
		}
		// Constructors: any function here whose results include the type.
		if fn.Type.Results != nil {
			for _, res := range fn.Type.Results.List {
				if _, ok := c.snapshotRule(c.pkg.Info.TypeOf(res.Type)); ok {
					return true
				}
			}
		}
	}
	return false
}

func (c *snapImmutChecker) checkFunc(fn *ast.FuncDecl) {
	c.tainted = make(map[types.Object]bool)
	c.propagateTaint(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.IncDecStmt:
			c.checkTarget(s, s.X)
		case *ast.CallExpr:
			c.checkCall(s)
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if owner, field, ok := c.snapOwnedRef(res); ok {
					c.report(s, "snapimmut", "returns snapshot-owned %s.%s; callers receive a mutable alias into an immutable %s — return a copy",
						types.ExprString(owner), field, c.typeName(owner))
				}
			}
		case *ast.CompositeLit:
			c.checkComposite(s)
		}
		return true
	})
}

// propagateTaint computes, to a fixed point, the reference-typed locals
// assigned (directly or transitively) from snapshot-reachable expressions.
func (c *snapImmutChecker) propagateTaint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					if c.taintFrom(lhs, s.Rhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, name := range s.Names {
					if c.taintFrom(name, s.Values[i]) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// taintFrom marks lhs tainted when rhs reaches snapshot state; it reports
// whether the taint set grew.
func (c *snapImmutChecker) taintFrom(lhs ast.Expr, rhs ast.Expr) bool {
	id := identOf(lhs)
	if id == nil {
		return false
	}
	obj := c.objectOf(id)
	if obj == nil || c.tainted[obj] || !isRefType(c.pkg.Info.TypeOf(lhs)) {
		return false
	}
	// Package-level aliases are the leak check's business; taint tracks only
	// function-local aliases.
	if v, ok := obj.(*types.Var); ok && v.Parent() == c.pkg.Types.Scope() {
		return false
	}
	if c.reachesSnapshot(rhs) {
		c.tainted[obj] = true
		return true
	}
	return false
}

func (c *snapImmutChecker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return c.pkg.Info.Uses[id]
}

// reachesSnapshot reports whether expr's selector/index chain passes through
// a snapshot-typed sub-expression or is rooted at a tainted local. Calls
// terminate the chain: values returned by functions are the callee's
// business.
func (c *snapImmutChecker) reachesSnapshot(e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		if _, ok := c.snapshotRule(c.pkg.Info.TypeOf(e)); ok {
			return true
		}
		switch x := e.(type) {
		case *ast.Ident:
			obj := c.objectOf(x)
			return obj != nil && c.tainted[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (c *snapImmutChecker) checkAssign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if s.Tok == token.DEFINE {
			// New variables never write through the snapshot; taint handles
			// the alias they may create.
			continue
		}
		c.checkTarget(s, lhs)
		// Leak side: snapshot-owned reference stored somewhere that outlives
		// the local scope.
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else {
			continue
		}
		owner, field, ok := c.snapOwnedRef(rhs)
		if !ok {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := c.objectOf(target)
			if v, isVar := obj.(*types.Var); isVar && v.Parent() == c.pkg.Types.Scope() {
				c.report(s, "snapimmut", "stores snapshot-owned %s.%s into package variable %s; the alias outlives the snapshot's immutability guarantee — store a copy",
					types.ExprString(owner), field, target.Name)
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			if !c.reachesSnapshot(lhs) {
				c.report(s, "snapimmut", "stores snapshot-owned %s.%s into %s; a mutable alias escapes the immutable %s — store a copy",
					types.ExprString(owner), field, types.ExprString(lhs), c.typeName(owner))
			}
		}
	}
}

// checkTarget flags a write whose target is a snapshot field or reaches one.
func (c *snapImmutChecker) checkTarget(at ast.Node, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if rule, ok := c.snapshotRule(c.pkg.Info.TypeOf(sel.X)); ok {
			if c.isField(sel) {
				c.report(at, "snapimmut", "write to %s.%s outside its sanctioned writers (%s); published snapshots are immutable — build a fresh snapshot instead",
					c.typeName(sel.X), sel.Sel.Name, writerNames(rule))
				return
			}
		}
	}
	if c.reachesSnapshot(lhs) {
		c.report(at, "snapimmut", "store through snapshot-owned %s; published snapshots and everything reachable from them are immutable — mutate a copy and republish",
			types.ExprString(lhs))
	}
}

// checkCall flags builtin delete/clear on snapshot-reachable maps.
func (c *snapImmutChecker) checkCall(call *ast.CallExpr) {
	id := identOf(call.Fun)
	if id == nil || len(call.Args) == 0 {
		return
	}
	b, ok := c.pkg.Info.Uses[id].(*types.Builtin)
	if !ok || (b.Name() != "delete" && b.Name() != "clear") {
		return
	}
	if c.reachesSnapshot(call.Args[0]) {
		c.report(call, "snapimmut", "%s on snapshot-owned %s; published snapshots are immutable — mutate a copy and republish",
			b.Name(), types.ExprString(call.Args[0]))
	}
}

// checkComposite flags snapshot-owned references captured by composite
// literals (struct dumps, response maps): the literal's lifetime is unknown,
// so the alias must be severed with a copy.
func (c *snapImmutChecker) checkComposite(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if owner, field, ok := c.snapOwnedRef(v); ok {
			c.report(elt, "snapimmut", "composite literal captures snapshot-owned %s.%s; a mutable alias escapes the immutable %s — insert a copy",
				types.ExprString(owner), field, c.typeName(owner))
		}
	}
}

// snapOwnedRef reports whether e is a direct map- or slice-typed field
// selection on a snapshot value, returning the owner expression and field
// name.
func (c *snapImmutChecker) snapOwnedRef(e ast.Expr) (owner ast.Expr, field string, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel || !c.isField(sel) {
		return nil, "", false
	}
	if _, isSnap := c.snapshotRule(c.pkg.Info.TypeOf(sel.X)); !isSnap {
		return nil, "", false
	}
	switch c.pkg.Info.TypeOf(sel).Underlying().(type) {
	case *types.Map, *types.Slice:
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// isField reports whether sel selects a struct field (not a method).
func (c *snapImmutChecker) isField(sel *ast.SelectorExpr) bool {
	s := c.pkg.Info.Selections[sel]
	return s != nil && s.Kind() == types.FieldVal
}

func (c *snapImmutChecker) typeName(e ast.Expr) string {
	t := c.pkg.Info.TypeOf(e)
	if t == nil {
		return "snapshot"
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func writerNames(r SnapshotRule) string {
	names := make([]string, 0, len(r.Writers))
	for w := range r.Writers {
		names = append(names, w)
	}
	if len(names) == 0 {
		return "its constructors"
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (c *snapImmutChecker) report(n ast.Node, check, format string, args ...any) {
	if c.ann.suppressedBy(mutInvariantDirective, c.pkg.Fset, n) {
		return
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(n.Pos()),
		Check:   check,
		Message: fmt.Sprintf(format, args...) + "; or annotate //lint:mutinvariant with a reason",
	})
}

func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer:
		return true
	}
	return false
}
