package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkNoGo bans `go` statements outside the policy table's designated
// goroutine owners. In simulator packages every goroutine is a scheduling
// dependency the determinism proof cannot see; everywhere else an ad-hoc
// goroutine is concurrency the snapshot model does not account for.
// Parallelism routes through internal/exec's worker pool, which assigns all
// inputs before any work is scheduled; background work belongs to the
// explicit owners (exec, bgp/speaker, orchestrator, api).
func checkNoGo(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(g.Pos()),
					Check:   "nogo",
					Message: "go statement outside a designated goroutine owner; route parallelism through internal/exec's worker pool",
				})
			}
			return true
		})
	}
	return diags
}

// checkCopyLocks flags sync primitives copied by value: passing or returning
// a sync.Mutex / WaitGroup (or any struct or array containing one) by value,
// ranging over such values, or assigning them. A copied lock guards nothing.
// This is a focused re-implementation of vet's copylocks so `make lint`
// stands alone and fixture self-tests pin the behavior.
func checkCopyLocks(pkg *Package) []Diagnostic {
	c := &copyLocksChecker{pkg: pkg, memo: make(map[types.Type]bool)}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				c.checkFuncType(s.Type)
			case *ast.FuncLit:
				c.checkFuncType(s.Type)
			case *ast.RangeStmt:
				c.checkRange(s)
			case *ast.AssignStmt:
				c.checkAssign(s)
			case *ast.CallExpr:
				c.checkCallArgs(s)
			}
			return true
		})
	}
	return c.diags
}

type copyLocksChecker struct {
	pkg   *Package
	memo  map[types.Type]bool
	diags []Diagnostic
}

func (c *copyLocksChecker) report(n ast.Node, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(n.Pos()),
		Check:   "copylocks",
		Message: fmt.Sprintf(format, args...),
	})
}

// checkFuncType flags lock-containing value parameters and results.
func (c *copyLocksChecker) checkFuncType(ft *ast.FuncType) {
	fields := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if t := c.pkg.Info.TypeOf(f.Type); t != nil && c.containsLock(t) {
				c.report(f.Type, "%s passes %s by value; it contains a sync primitive — use a pointer", kind, t)
			}
		}
	}
	fields(ft.Params, "parameter")
	fields(ft.Results, "result")
}

// checkRange flags `for _, v := range xs` where v copies a lock per element.
func (c *copyLocksChecker) checkRange(s *ast.RangeStmt) {
	if s.Value == nil {
		return
	}
	if t := c.pkg.Info.TypeOf(s.Value); t != nil && c.containsLock(t) {
		c.report(s.Value, "range copies %s by value per element; it contains a sync primitive", t)
	}
}

// checkAssign flags assignments that copy a lock-containing value. Composite
// literals and fresh calls construct rather than copy, so they pass.
func (c *copyLocksChecker) checkAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return // tuple from call; flagged at the callee's result type instead
	}
	for i, rhs := range s.Rhs {
		t := c.pkg.Info.TypeOf(rhs)
		if t == nil || !c.containsLock(t) {
			continue
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue // construction, not a copy
		}
		c.report(s.Lhs[i], "assignment copies %s by value; it contains a sync primitive", t)
	}
}

// checkCallArgs flags lock-containing values passed by value as arguments.
func (c *copyLocksChecker) checkCallArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if _, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
			continue
		}
		if t := c.pkg.Info.TypeOf(arg); t != nil && c.containsLock(t) {
			c.report(arg, "call passes %s by value; it contains a sync primitive — pass a pointer", t)
		}
	}
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t directly embeds a sync primitive by value
// (the type itself, a struct field, or an array element — not behind a
// pointer, slice, map, or channel).
func (c *copyLocksChecker) containsLock(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // break cycles; recursive types can't embed by value anyway
	v := c.containsLockUncached(t)
	c.memo[t] = v
	return v
}

func (c *copyLocksChecker) containsLockUncached(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.containsLock(u.Elem())
	}
	return false
}
