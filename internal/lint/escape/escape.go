// Package escape is anyoptlint's allocation gate: a compiler-driven
// escape-analysis pass over the hot-path packages, diffed against a
// checked-in baseline.
//
// PR 5's zero-allocation event engine is enforced dynamically by benchmarks
// — which only fail when someone runs them and reads the numbers. This
// package makes the property static: it recompiles the gated packages with
// `go tool compile -m=1`, parses the "escapes to heap" / "moved to heap"
// diagnostics, attributes each site to its enclosing function, and compares
// the per-(package, function, message) counts against lint/escape_baseline.txt.
// A function that gains a heap-escape site fails `make lint` at the diff,
// with the offending source position in the message; deliberate changes
// regenerate the baseline with `make escape-baseline`.
//
// The compiler is driven directly (not through `go build`) because the build
// cache swallows -m output on cache hits: `go list -export -deps` supplies
// fresh export data for every dependency, an importcfg is synthesized from
// it, and each gated package is recompiled to a discarded object file. That
// costs one real compile per gated package per lint run and in exchange the
// diagnostics are complete every time.
package escape

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultPackages are the hot-path packages on the zero-allocation contract.
var DefaultPackages = []string{
	"./internal/netsim",
	"./internal/bgp",
	"./internal/netproto",
	"./internal/core/discovery",
	"./internal/core/splpo",
	"./internal/reconcile",
}

// Site identifies one class of heap escape: a message the compiler emits for
// a function. Source positions are deliberately excluded so unrelated edits
// that shift lines do not churn the baseline.
type Site struct {
	// Pkg is the import path.
	Pkg string
	// Func is the enclosing function, as Recv.Name for methods.
	Func string
	// Msg is the compiler's diagnostic text, e.g. "x escapes to heap".
	Msg string
}

// Finding is one concrete occurrence of a Site in the current tree.
type Finding struct {
	Site
	File string
	Line int
	Col  int
}

// listedPackage is the slice of `go list -json` output this package needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
}

func goJSON(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("escape: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("escape: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Analyze recompiles the packages matched by patterns (relative to dir) with
// escape diagnostics enabled and returns every heap-escape occurrence,
// attributed to its enclosing function.
func Analyze(dir string, patterns []string) ([]Finding, error) {
	// One -deps load supplies export data for the full dependency closure —
	// including module-internal deps, which `go list -export` compiles
	// through the ordinary build cache.
	closure, err := goJSON(dir, append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goJSON(dir, append([]string{"list",
		"-json=ImportPath,Dir,GoFiles,Standard,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	cfgDir, err := os.MkdirTemp("", "anyoptlint-escape")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cfgDir)
	var cfg bytes.Buffer
	for _, p := range closure {
		if p.Export != "" {
			fmt.Fprintf(&cfg, "packagefile %s=%s\n", p.ImportPath, p.Export)
		}
	}
	importcfg := filepath.Join(cfgDir, "importcfg")
	if err := os.WriteFile(importcfg, cfg.Bytes(), 0o644); err != nil {
		return nil, err
	}

	var findings []Finding
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		occ, err := compileWithDiagnostics(t, importcfg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, occ...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Msg < b.Msg
	})
	return findings, nil
}

// compileWithDiagnostics recompiles one package to a discarded object and
// parses the -m=1 stream.
func compileWithDiagnostics(t *listedPackage, importcfg string) ([]Finding, error) {
	files := make([]string, len(t.GoFiles))
	for i, name := range t.GoFiles {
		files[i] = filepath.Join(t.Dir, name)
	}
	args := append([]string{"tool", "compile", "-m=1", "-importcfg", importcfg,
		"-p", t.ImportPath, "-o", os.DevNull}, files...)
	cmd := exec.Command("go", args...)
	// The compiler writes -m diagnostics to stdout and errors to stderr.
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: compiling %s: %v\n%s%s", t.ImportPath, err, stderr.String(), stdout.String())
	}
	idx, err := newFuncIndex(files)
	if err != nil {
		return nil, err
	}
	var out []Finding
	sc := bufio.NewScanner(&stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f, ok := parseDiagnostic(sc.Text(), t.ImportPath, idx)
		if ok {
			out = append(out, f)
		}
	}
	return out, sc.Err()
}

// parseDiagnostic extracts a heap-escape finding from one `file:line:col:
// msg` compiler line.
func parseDiagnostic(line, pkg string, idx *funcIndex) (Finding, bool) {
	if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
		return Finding{}, false
	}
	// Splitting on ".go:" keeps absolute file paths intact; line, column,
	// and the message follow.
	first := strings.SplitN(line, ".go:", 2)
	if len(first) != 2 {
		return Finding{}, false
	}
	file := first[0] + ".go"
	tail := first[1]
	nums := strings.SplitN(tail, ":", 3)
	if len(nums) != 3 {
		return Finding{}, false
	}
	ln, err1 := strconv.Atoi(nums[0])
	col, err2 := strconv.Atoi(nums[1])
	if err1 != nil || err2 != nil {
		return Finding{}, false
	}
	msg := strings.TrimSpace(nums[2])
	return Finding{
		Site: Site{Pkg: pkg, Func: idx.enclosing(file, ln), Msg: msg},
		File: file,
		Line: ln,
		Col:  col,
	}, true
}

// funcIndex maps (file, line) to the enclosing top-level function so escape
// sites survive line-number churn in the baseline.
type funcIndex struct {
	// spans maps file path to its sorted function spans.
	spans map[string][]funcSpan
}

type funcSpan struct {
	start, end int // line numbers, inclusive
	name       string
}

func newFuncIndex(files []string) (*funcIndex, error) {
	idx := &funcIndex{spans: make(map[string][]funcSpan, len(files))}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("escape: parsing %s: %w", path, err)
		}
		var spans []funcSpan
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			spans = append(spans, funcSpan{
				start: fset.Position(fn.Pos()).Line,
				end:   fset.Position(fn.End()).Line,
				name:  funcName(fn),
			})
		}
		idx.spans[path] = spans
	}
	return idx, nil
}

// funcName renders a FuncDecl as Recv.Name for methods, Name otherwise.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func (idx *funcIndex) enclosing(file string, line int) string {
	for _, s := range idx.spans[file] {
		if line >= s.start && line <= s.end {
			return s.name
		}
	}
	return "<toplevel>"
}

// Counts aggregates findings into per-site occurrence counts.
func Counts(findings []Finding) map[Site]int {
	out := make(map[Site]int, len(findings))
	for _, f := range findings {
		out[f.Site]++
	}
	return out
}

// Baseline is the accepted per-site escape budget.
type Baseline map[Site]int

// baselineHeader introduces the checked-in file.
const baselineHeader = `# anyoptlint escape-analysis baseline.
# One line per accepted heap-escape site: pkg<TAB>func<TAB>count<TAB>message.
# Regenerate after deliberate allocation changes with: make escape-baseline
`

// ParseBaseline reads a baseline written by FormatBaseline.
func ParseBaseline(r io.Reader) (Baseline, error) {
	base := make(Baseline)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, "\t", 4)
		if len(fields) != 4 {
			return nil, fmt.Errorf("escape: baseline line %d: want pkg\\tfunc\\tcount\\tmessage", n)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("escape: baseline line %d: bad count %q", n, fields[2])
		}
		base[Site{Pkg: fields[0], Func: fields[1], Msg: fields[3]}] = count
	}
	return base, sc.Err()
}

// FormatBaseline renders counts in the checked-in format, sorted.
func FormatBaseline(counts map[Site]int) []byte {
	sites := make([]Site, 0, len(counts))
	for s := range counts {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Msg < b.Msg
	})
	var buf bytes.Buffer
	buf.WriteString(baselineHeader)
	for _, s := range sites {
		fmt.Fprintf(&buf, "%s\t%s\t%d\t%s\n", s.Pkg, s.Func, counts[s], s.Msg)
	}
	return buf.Bytes()
}

// Regression is a site whose escape count exceeds the baseline's budget.
type Regression struct {
	Site
	// Have and Allowed are the current and baselined occurrence counts.
	Have, Allowed int
	// File, Line, Col locate one current occurrence.
	File string
	Line int
	Col  int
}

// Diff reports every site whose current count exceeds the baseline. Sites
// that shrank or disappeared are not regressions — they become baseline
// slack until the next `make escape-baseline`.
func Diff(findings []Finding, base Baseline) []Regression {
	counts := Counts(findings)
	var regs []Regression
	for site, have := range counts {
		allowed := base[site]
		if have <= allowed {
			continue
		}
		reg := Regression{Site: site, Have: have, Allowed: allowed}
		for _, f := range findings {
			if f.Site == site {
				reg.File, reg.Line, reg.Col = f.File, f.Line, f.Col
				break
			}
		}
		regs = append(regs, reg)
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Msg < b.Msg
	})
	return regs
}
