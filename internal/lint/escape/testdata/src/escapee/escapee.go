// Package escapee is the allocation gate's self-test fixture: one function
// with a guaranteed heap escape and one that stays on the stack.
package escapee

// Box forces its argument to the heap: the pointer outlives the frame.
func Box(v int) *int {
	return &v
}

// stackOnly must produce no escape diagnostics.
func stackOnly(v int) int {
	x := v * 2
	return x + 1
}

var _ = stackOnly
