package escape

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestFixtureAnalysis drives the full compile-and-parse pipeline over the
// escapee fixture: the deliberate heap escape in Box must surface, attributed
// to its function, and the stack-only function must stay silent.
func TestFixtureAnalysis(t *testing.T) {
	findings, err := Analyze(".", []string{"./testdata/src/escapee"})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("no escape findings from fixture; expected Box's moved-to-heap site")
	}
	var boxed bool
	for _, f := range findings {
		if f.Func != "Box" {
			t.Errorf("finding outside Box: %+v", f)
		}
		if strings.Contains(f.Msg, "moved to heap") {
			boxed = true
		}
		if !strings.HasSuffix(f.File, "escapee.go") || f.Line == 0 {
			t.Errorf("finding missing source position: %+v", f)
		}
		if f.Pkg != "anyopt/internal/lint/escape/testdata/src/escapee" {
			t.Errorf("finding has wrong package: %+v", f)
		}
	}
	if !boxed {
		t.Errorf("no moved-to-heap finding for Box; got %+v", findings)
	}

	// Against an empty baseline the fixture's escape is a regression — this
	// is the acceptance test that a new heap escape fails the gate.
	regs := Diff(findings, Baseline{})
	if len(regs) == 0 {
		t.Fatal("Diff against empty baseline reported no regressions")
	}
	if regs[0].File == "" || regs[0].Line == 0 {
		t.Errorf("regression missing source position: %+v", regs[0])
	}

	// Against its own counts the fixture is clean — the regenerated-baseline
	// steady state.
	if regs := Diff(findings, Baseline(Counts(findings))); len(regs) != 0 {
		t.Errorf("Diff against own counts reported regressions: %+v", regs)
	}
}

// TestBaselineRoundTrip pins the checked-in file format.
func TestBaselineRoundTrip(t *testing.T) {
	counts := map[Site]int{
		{Pkg: "anyopt/internal/netsim", Func: "Engine.Run", Msg: "x escapes to heap"}:     2,
		{Pkg: "anyopt/internal/bgp", Func: "parse", Msg: "moved to heap: buf"}:            1,
		{Pkg: "anyopt/internal/netproto", Func: "<toplevel>", Msg: "lit escapes to heap"}: 3,
	}
	text := FormatBaseline(counts)
	if !bytes.HasPrefix(text, []byte("#")) {
		t.Errorf("baseline missing header comment:\n%s", text)
	}
	back, err := ParseBaseline(bytes.NewReader(text))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if len(back) != len(counts) {
		t.Fatalf("round trip lost sites: got %d, want %d", len(back), len(counts))
	}
	for site, n := range counts {
		if back[site] != n {
			t.Errorf("site %+v: got count %d, want %d", site, back[site], n)
		}
	}
}

// TestBaselineParseErrors pins the malformed-line diagnostics.
func TestBaselineParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"missing fields", "pkg\tfn\t1\n", "want pkg"},
		{"bad count", "pkg\tfn\tmany\tmsg\n", "bad count"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseBaseline(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("ParseBaseline(%q) error = %v, want mention of %q", c.in, err, c.want)
			}
		})
	}
	// Comments and blank lines are not errors.
	base, err := ParseBaseline(strings.NewReader("# header\n\npkg\tfn\t4\tmsg with\ttab? no: SplitN caps at 4\n"))
	if err != nil {
		t.Fatalf("ParseBaseline with comments: %v", err)
	}
	if len(base) != 1 {
		t.Fatalf("got %d sites, want 1", len(base))
	}
}

// TestDiffSemantics pins the budget arithmetic: growth regresses, shrinkage
// and disappearance do not, and new sites regress from zero.
func TestDiffSemantics(t *testing.T) {
	site := func(fn string) Site { return Site{Pkg: "p", Func: fn, Msg: "x escapes to heap"} }
	findings := []Finding{
		{Site: site("grew"), File: "a.go", Line: 10},
		{Site: site("grew"), File: "a.go", Line: 20},
		{Site: site("held"), File: "a.go", Line: 30},
		{Site: site("fresh"), File: "b.go", Line: 5},
	}
	base := Baseline{site("grew"): 1, site("held"): 1, site("gone"): 7}
	regs := Diff(findings, base)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	byFunc := map[string]Regression{}
	for _, r := range regs {
		byFunc[r.Func] = r
	}
	if r := byFunc["grew"]; r.Have != 2 || r.Allowed != 1 || r.Line != 10 {
		t.Errorf("grew: %+v", r)
	}
	if r := byFunc["fresh"]; r.Have != 1 || r.Allowed != 0 || r.File != "b.go" {
		t.Errorf("fresh: %+v", r)
	}
}

// TestModuleBaselineCurrent is the merge gate: the hot-path packages must fit
// inside the checked-in baseline.
func TestModuleBaselineCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the hot-path packages")
	}
	findings, err := Analyze("../../..", DefaultPackages)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	f, err := os.Open("../../../lint/escape_baseline.txt")
	if err != nil {
		t.Fatalf("opening baseline: %v", err)
	}
	defer f.Close()
	base, err := ParseBaseline(f)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	for _, r := range Diff(findings, base) {
		t.Errorf("new heap escape: %s.%s: %s (%d > %d) at %s:%d — regenerate with make escape-baseline if deliberate",
			r.Pkg, r.Func, r.Msg, r.Have, r.Allowed, r.File, r.Line)
	}
}
