package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkEntropy enforces the simulator's entropy contract: no wall-clock
// reads and no global (unseeded) randomness. Simulator results must be a
// pure function of explicit seeds — virtual time comes from the netsim
// engine, and every random draw must flow through a seeded source the caller
// constructed (rand.New(rand.NewSource(seed))) or the FNV-based hash mixers.
//
// With noRand set the contract tightens: the package may not touch math/rand
// at all, even seeded. That marks packages whose randomness budget is zero —
// any entropy they need arrives pre-drawn through parameters (jitter nonces,
// noise models, internal/fault injectors), so a rand import there means a
// second, untracked entropy source is sneaking onto the transport path.
func checkEntropy(pkg *Package, noRand bool) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(n.Pos()),
			Check:   "entropy",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := pkg.Info.Uses[identOf(sel.X)].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			name := sel.Sel.Name
			switch path {
			case "time":
				if bannedTimeFuncs[name] {
					report(sel, "time.%s reads the wall clock; simulator time must come from the netsim engine", name)
				}
			case "math/rand", "math/rand/v2":
				if noRand {
					report(sel, "%s.%s: this package holds no entropy source, seeded or not; chaos randomness belongs to internal/fault", path, name)
				} else if !seededRandConstructors[name] {
					report(sel, "%s.%s draws from the global rand source; thread a seeded *rand.Rand through instead", path, name)
				}
			case "crypto/rand":
				report(sel, "crypto/rand is nondeterministic by design and has no place in the simulator")
			}
			return true
		})
	}
	return diags
}

// bannedTimeFuncs are the package time functions that consult the wall clock
// or real timers. Types (time.Duration) and pure conversions remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandConstructors are the math/rand (and v2) names that build a
// source rather than draw from the global one. Everything else at package
// level uses process-global state seeded outside the experiment's control.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 source constructors:
	"NewPCG": true, "NewChaCha8": true,
	// types referenced in declarations (e.g. *rand.Rand parameters):
	"Rand": true, "Source": true, "Source64": true, "Zipf": true, "PCG": true, "ChaCha8": true,
}
