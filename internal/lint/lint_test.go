package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePolicy enables every check on the fixture tree; the strictrand
// fixture additionally gets the NoRand tightening it exists to exercise.
var fixturePolicy = []PolicyRule{
	{"anyopt/internal/lint/testdata/src/...", Policy{MapOrder: true, Entropy: true, CopyLocks: true, NoGo: true, SnapImmut: true, AtomicUse: true}},
	{"anyopt/internal/lint/testdata/src/strictrand", Policy{MapOrder: true, Entropy: true, NoRand: true, CopyLocks: true, NoGo: true}},
}

// fixtureSnapshotRules and fixtureAtomicGuards retarget the mutation
// invariants at the fixture's own types.
var fixtureSnapshotRules = []SnapshotRule{
	{Type: "anyopt/internal/lint/testdata/src/snapimmut.Snapshot", Writers: map[string]bool{"InstallCampaign": true}},
}

var fixtureAtomicGuards = []AtomicGuard{
	{Struct: "anyopt/internal/lint/testdata/src/atomicuse.Sys", Field: "snap", Writers: map[string]bool{"InstallCampaign": true}},
	{Struct: "anyopt/internal/lint/testdata/src/atomicuse.Sys", Field: "gen", Writers: map[string]bool{"InstallCampaign": true}},
}

// fixtureRunner is the Runner every fixture test uses.
func fixtureRunner() *Runner {
	return &Runner{
		Policies:      fixturePolicy,
		SnapshotRules: fixtureSnapshotRules,
		AtomicGuards:  fixtureAtomicGuards,
	}
}

func loadFixtures(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	loader := NewLoader(".")
	pkgs, err := loader.Load(dirs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(dirs))
	}
	return pkgs
}

// wantRe extracts `// want "regex"` expectations.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans fixture sources for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &expectation{file: path, line: line, re: re})
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// TestFixtureGolden runs every check over the fixture packages and requires
// an exact match between produced diagnostics and // want expectations.
func TestFixtureGolden(t *testing.T) {
	dirs := []string{
		"./testdata/src/maporder",
		"./testdata/src/entropy",
		"./testdata/src/strictrand",
		"./testdata/src/concurrency",
		"./testdata/src/snapimmut",
		"./testdata/src/atomicuse",
	}
	pkgs := loadFixtures(t, dirs...)
	diags := fixtureRunner().Run(pkgs)

	var wants []*expectation
	for _, d := range dirs {
		wants = append(wants, collectWants(t, d)...)
	}
	if len(wants) == 0 {
		t.Fatal("no want expectations found in fixtures")
	}

	abs := func(p string) string {
		a, err := filepath.Abs(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && abs(w.file) == abs(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestBareDirectiveRejected pins the annotation contract: a reason-less
// //lint:orderinvariant is itself a violation and suppresses nothing.
func TestBareDirectiveRejected(t *testing.T) {
	pkgs := loadFixtures(t, "./testdata/src/annot")
	diags := fixtureRunner().Run(pkgs)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bad directive + unsuppressed append):\n%s", len(diags), format(diags))
	}
	if !strings.Contains(diags[0].Message, "requires a reason") {
		t.Errorf("first diagnostic should reject the bare directive, got: %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "appends to slice out") {
		t.Errorf("second diagnostic should keep the append finding, got: %s", diags[1])
	}
}

// TestPolicyResolution pins the table semantics: longest pattern wins, the
// speaker keeps its goroutines, and unmatched paths get no checks.
func TestPolicyResolution(t *testing.T) {
	cases := []struct {
		path string
		want Policy
	}{
		{"anyopt", baseline},
		{"anyopt/internal/analysis", baseline},
		{"anyopt/internal/bgp", simPure},
		{"anyopt/internal/bgp/wire", simPure},
		{"anyopt/internal/bgp/speaker", goOwner},
		{"anyopt/internal/bgp/invariant", simPure},
		{"anyopt/internal/netsim", simPure},
		{"anyopt/internal/topology", sim},
		{"anyopt/internal/core/discovery", simPure},
		{"anyopt/internal/core/prefs", simPure},
		{"anyopt/internal/core/splpo", sim},
		{"anyopt/internal/probe", sim},
		{"anyopt/internal/fault", sim},
		{"anyopt/internal/exec", goOwner},
		{"anyopt/internal/orchestrator", goOwner},
		{"anyopt/internal/api", goOwner},
		{"anyopt/cmd/anyopt", baseline},
		{"anyopt/cmd/anyoptd", baseline},
		{"github.com/elsewhere/pkg", Policy{}},
	}
	for _, c := range cases {
		if got := PolicyFor(DefaultPolicies, c.path); got != c.want {
			t.Errorf("PolicyFor(%q) = %+v, want %+v", c.path, got, c.want)
		}
	}
}

// TestModuleClean is the merge gate in unit-test form: the repository's own
// tree must produce zero diagnostics under the default policy table.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := NewLoader("../..")
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module enumeration looks broken", len(pkgs))
	}
	diags := (&Runner{}).Run(pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
