package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. Each must carry a reason:
//
//	//lint:orderinvariant result is a set; downstream consumers sort it
//	//lint:mutinvariant serialization view is write-once and never escapes
//
// placed on the line of the flagged statement or the line directly above it.
// orderInvariantDirective suppresses maporder findings; mutInvariantDirective
// suppresses the mutation-invariant tier (snapimmut and atomicuse).
const (
	orderInvariantDirective = "lint:orderinvariant"
	mutInvariantDirective   = "lint:mutinvariant"
)

// directives lists every suppression directive with the check a malformed
// instance is reported under.
var directives = []struct {
	name  string
	check string
}{
	{orderInvariantDirective, "maporder"},
	{mutInvariantDirective, "snapimmut"},
}

// annotations records where suppression directives appear.
type annotations struct {
	// lines maps directive -> file name -> set of line numbers carrying a
	// valid (reasoned) instance of that directive.
	lines map[string]map[string]map[int]bool
	// diags reports malformed directives (missing reason).
	diags []Diagnostic
}

// collectAnnotations scans a package's comments for lint directives.
func collectAnnotations(pkg *Package) *annotations {
	ann := &annotations{lines: make(map[string]map[string]map[int]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				for _, d := range directives {
					if !strings.HasPrefix(text, d.name) {
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(text, d.name))
					pos := pkg.Fset.Position(c.Pos())
					if reason == "" {
						ann.diags = append(ann.diags, Diagnostic{
							Pos:     pos,
							Check:   d.check,
							Message: "//" + d.name + " requires a reason explaining why the invariant holds here",
						})
						continue
					}
					files := ann.lines[d.name]
					if files == nil {
						files = make(map[string]map[int]bool)
						ann.lines[d.name] = files
					}
					lines := files[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						files[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return ann
}

// suppressedBy reports whether a node at pos is covered by the given
// directive on its own line or the line above.
func (a *annotations) suppressedBy(directive string, fset *token.FileSet, node ast.Node) bool {
	pos := fset.Position(node.Pos())
	lines := a.lines[directive][pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}

// suppressed reports whether a node is covered by an orderinvariant
// directive (the maporder check's escape hatch).
func (a *annotations) suppressed(fset *token.FileSet, node ast.Node) bool {
	return a.suppressedBy(orderInvariantDirective, fset, node)
}
