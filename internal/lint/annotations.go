package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// orderInvariantDirective is the suppression annotation for the maporder
// check. It must carry a reason:
//
//	//lint:orderinvariant result is a set; downstream consumers sort it
//
// placed on the line of the range statement or the line directly above it.
const orderInvariantDirective = "lint:orderinvariant"

// annotations records where suppression directives appear.
type annotations struct {
	// orderInvariant maps file name -> set of line numbers carrying a valid
	// (reasoned) orderinvariant directive.
	orderInvariant map[string]map[int]bool
	// diags reports malformed directives (missing reason).
	diags []Diagnostic
}

// collectAnnotations scans a package's comments for lint directives.
func collectAnnotations(pkg *Package) *annotations {
	ann := &annotations{orderInvariant: make(map[string]map[int]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, orderInvariantDirective) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, orderInvariantDirective))
				pos := pkg.Fset.Position(c.Pos())
				if reason == "" {
					ann.diags = append(ann.diags, Diagnostic{
						Pos:     pos,
						Check:   "maporder",
						Message: "//lint:orderinvariant requires a reason explaining why iteration order cannot affect results",
					})
					continue
				}
				lines := ann.orderInvariant[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					ann.orderInvariant[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return ann
}

// suppressed reports whether a node at pos is covered by an orderinvariant
// directive on its own line or the line above.
func (a *annotations) suppressed(fset *token.FileSet, node ast.Node) bool {
	pos := fset.Position(node.Pos())
	lines := a.orderInvariant[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}
