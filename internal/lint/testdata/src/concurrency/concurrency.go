// Package concurrency is an anyoptlint self-test fixture for the copylocks
// and nogo checks: sync primitives must not be copied by value and simulator
// packages must not spawn goroutines.
package concurrency

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want "parameter passes .* by value"
	return g.n
}

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func returnsValue() guarded { // want "result passes .* by value"
	return guarded{}
}

func deref(g *guarded) int {
	cp := *g // want "assignment copies"
	return cp.n
}

func construct() *guarded {
	g := guarded{n: 1} // constructing a fresh value is not a copy
	return &g
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies"
		total += g.n
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func passes(g *guarded) int {
	return byValue(*g) // want "call passes .* by value"
}

func spawn(fn func()) {
	go fn() // want "go statement outside a designated goroutine owner"
}
