// Package cgotag is a loader fixture: one always-built file plus one behind
// the cgo build tag, so tests can pin file selection under CGO_ENABLED.
package cgotag

// Base is the always-present symbol.
const Base = 1
