//go:build cgo

package cgotag

// WithCgo only exists when cgo is enabled; the file imports no C code so the
// fixture builds without a C toolchain.
const WithCgo = 2
