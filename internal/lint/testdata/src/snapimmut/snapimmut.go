// Package snapimmut is an anyoptlint self-test fixture for the snapshot
// immutability check: a Snapshot published for lock-free readers may be
// mutated only by its sanctioned writers, and no mutable alias may leak out
// of it. The fixture's rule names InstallCampaign as the sole writer;
// newSnapshot is sanctioned implicitly as a constructor.
package snapimmut

// Snapshot mirrors the shape that matters: scalar fields, reference-typed
// fields, and a pointer into owned state.
type Snapshot struct {
	Gen   uint64
	Order []int
	Sizes map[int]int
	Meta  *Meta
}

// Meta is snapshot-owned mutable state behind a pointer.
type Meta struct{ Name string }

// Sys owns the published snapshot.
type Sys struct{ cur *Snapshot }

// holder is an unrelated mutable struct a leak could hide in.
type holder struct{ sizes map[int]int }

// leakedSizes is a package-level alias sink.
var leakedSizes map[int]int

// InstallCampaign is the sanctioned writer: construction and field writes
// here are the copy-on-write publish path.
func InstallCampaign(sys *Sys, order []int) *Snapshot {
	snap := &Snapshot{Order: append([]int(nil), order...), Sizes: map[int]int{}, Meta: &Meta{}}
	snap.Gen = 1
	snap.Sizes[0] = len(order)
	sys.cur = snap
	return snap
}

// newSnapshot returns the snapshot type, so it is a constructor and may
// mutate freely.
func newSnapshot() *Snapshot {
	s := &Snapshot{Sizes: map[int]int{}}
	s.Gen = 1
	return s
}

func mutateField(snap *Snapshot) {
	snap.Gen = 2 // want "write to Snapshot.Gen outside its sanctioned writers"
}

func bumpField(snap *Snapshot) {
	snap.Gen++ // want "write to Snapshot.Gen outside its sanctioned writers"
}

func deepStores(snap *Snapshot) {
	snap.Sizes[1] = 2     // want "store through snapshot-owned"
	snap.Order[0] = 9     // want "store through snapshot-owned"
	snap.Meta.Name = "x"  // want "store through snapshot-owned"
	delete(snap.Sizes, 3) // want "delete on snapshot-owned"
}

func overwrite(snap *Snapshot) {
	*snap = Snapshot{} // want "store through snapshot-owned"
}

// taintedStore aliases a snapshot-owned map into a local first; the store
// through the alias must still be caught.
func taintedStore(snap *Snapshot) {
	q := snap.Sizes
	q[7] = 1 // want "store through snapshot-owned"
}

func leakReturn(snap *Snapshot) map[int]int {
	return snap.Sizes // want "returns snapshot-owned"
}

func leakComposite(snap *Snapshot) holder {
	return holder{sizes: snap.Sizes} // want "composite literal captures snapshot-owned"
}

func leakStore(snap *Snapshot, h *holder) {
	h.sizes = snap.Sizes // want "stores snapshot-owned"
}

func leakGlobal(snap *Snapshot) {
	leakedSizes = snap.Sizes // want "into package variable"
}

// suppressedWrite exercises the escape hatch: a reasoned mutinvariant
// directive silences the finding.
func suppressedWrite(snap *Snapshot) {
	//lint:mutinvariant fixture exercises the escape hatch
	snap.Gen = 3
}

// reads shows the permitted read-only traffic: field reads, ranging,
// passing owned state to calls, and copies into locally-owned structures.
func reads(snap *Snapshot) uint64 {
	total := snap.Gen
	for _, v := range snap.Order {
		total += uint64(v)
	}
	local := make(map[int]int, len(snap.Sizes))
	for k := range snap.Sizes {
		local[k] = k
	}
	return total + uint64(len(local)) + uint64(consume(snap.Order))
}

func consume(xs []int) int { return len(xs) }

var _ = newSnapshot
