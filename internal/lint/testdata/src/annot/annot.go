// Package annot is an anyoptlint self-test fixture for the annotation
// contract: a bare //lint:orderinvariant with no reason must be rejected and
// must NOT suppress the finding it decorates. Expectations are asserted
// directly in lint_test.go because a want-comment cannot share a line with
// the directive under test.
package annot

func bareDirective(m map[int]int) []int {
	var out []int
	//lint:orderinvariant
	for k := range m {
		out = append(out, k)
	}
	return out
}
