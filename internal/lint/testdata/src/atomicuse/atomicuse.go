// Package atomicuse is an anyoptlint self-test fixture for the atomic
// discipline check: sync/atomic fields may be touched only through their
// Load/Store/Add methods, and guarded fields (snap, gen — the fixture mirror
// of System.snap) mutate only inside InstallCampaign.
package atomicuse

import "sync/atomic"

// Sys mirrors anyopt.System: a guarded snapshot pointer and generation
// counter, plus an unguarded metrics counter.
type Sys struct {
	snap atomic.Pointer[int]
	gen  atomic.Uint64
	hits atomic.Uint64
}

// InstallCampaign is the sanctioned write point for snap and gen.
func InstallCampaign(s *Sys, v *int) uint64 {
	s.snap.Store(v)
	return s.gen.Add(1)
}

// read shows the free side of the discipline: Load anywhere.
func read(s *Sys) *int {
	return s.snap.Load()
}

func rogueStore(s *Sys, v *int) {
	s.snap.Store(v) // want "outside its writer set"
}

func rogueSwap(s *Sys, v *int) *int {
	return s.snap.Swap(v) // want "outside its writer set"
}

func rogueBump(s *Sys) uint64 {
	return s.gen.Add(1) // want "outside its writer set"
}

// counters shows that unguarded atomics accept mutators anywhere — the
// discipline is about method use, not ownership, unless a guard says so.
func counters(s *Sys) uint64 {
	s.hits.Add(1)
	return s.hits.Load()
}

func plainUses(s *Sys) {
	p := &s.hits // want "accessed outside the atomic"
	_ = p
	v := s.hits // want "accessed outside the atomic"
	_ = v
	f := s.snap.Load // want "accessed outside the atomic"
	_ = f
}

// suppressedStore exercises the escape hatch.
func suppressedStore(s *Sys, v *int) {
	//lint:mutinvariant fixture exercises the escape hatch
	s.snap.Store(v)
}

var _ = read
var _ = counters
