// Package strictrand is an anyoptlint self-test fixture for the NoRand
// tightening of the entropy contract: under NoRand even seeded math/rand
// construction is flagged, while entropy that arrives pre-drawn through
// parameters passes.
package strictrand

import (
	"math/rand"
	"time"
)

func seededIsStillBanned(seed int64) int {
	src := rand.NewSource(seed) // want "rand.NewSource: this package holds no entropy source"
	rng := rand.New(src)        // want "rand.New: this package holds no entropy source"
	return rng.Intn(10)
}

func globalIsBannedToo() float64 {
	return rand.Float64() // want "rand.Float64: this package holds no entropy source"
}

func typeReferencesAreBanned(rng *rand.Rand) int { // want "rand.Rand: this package holds no entropy source"
	return rng.Intn(3)
}

// preDrawn shows the sanctioned shape: the caller drew the entropy and hands
// over plain values.
func preDrawn(jitter time.Duration, coin bool) time.Duration {
	if coin {
		return jitter * 2
	}
	return jitter
}
