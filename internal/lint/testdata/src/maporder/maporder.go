// Package maporder is an anyoptlint self-test fixture: each want-comment
// pins a diagnostic the maporder check must produce on that line, and every
// undecorated pattern must stay silent.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "appends to slice out"
	}
	return out
}

func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func keysSortSlice(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sumValues(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func countKeys(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func keyedSliceWrite(m map[int]string, dst []string) {
	for k, v := range m {
		dst[k] = v
	}
}

func keyDerivedSliceWrite(m map[int]string, dst []string) {
	for k, v := range m {
		dst[k-1] = v
	}
}

func positionalSliceWrite(m map[int]string, dst []string) {
	i := 0
	for _, v := range m {
		dst[i] = v // want "writes element of dst at a loop-dependent position"
		i++
	}
}

func render(m map[string]int, b *strings.Builder) {
	for k := range m {
		fmt.Fprintf(b, "%s\n", k) // want "writes to b via fmt.Fprintf"
	}
}

func builderMethod(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "writes to b"
	}
}

func localBuilder(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
	return out
}

func printer(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "prints to stdout via fmt.Println"
	}
}

func send(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want "sends to channel ch"
	}
}

func concat(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v // want "concatenates onto string s"
	}
	return s
}

type recorder struct{ rows []string }

func (r *recorder) AddRow(s string)  { r.rows = append(r.rows, s) }
func (r *recorder) SetName(s string) {}

func record(m map[string]bool, r *recorder) {
	for k := range m {
		r.AddRow(k) // want "calls r.AddRow, which records results in map order"
	}
}

func keyedSetter(m map[string]bool, r *recorder) {
	for k := range m {
		r.SetName(k)
	}
}

func suppressed(m map[int]int, r *recorder) {
	//lint:orderinvariant the recorder deduplicates rows into a set before use
	for k := range m {
		r.AddRow(fmt.Sprint(k))
	}
}
