// Package testonly is a loader fixture with no non-test Go files: go list
// resolves it, but there is nothing for the analyzers to load.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
