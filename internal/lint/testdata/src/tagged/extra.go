//go:build exttag

package tagged

// Extra exists only under the exttag build tag.
const Extra = 2
