// Package tagged is a loader fixture for build-tag round-trips: extra.go
// joins the package only under -tags exttag.
package tagged

// Base is the always-present symbol.
const Base = 1
