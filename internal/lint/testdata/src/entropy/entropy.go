// Package entropy is an anyoptlint self-test fixture for the seeded-entropy
// contract: wall-clock reads and global rand draws must be flagged, while
// seeded sources and pure time arithmetic pass.
package entropy

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func timers() {
	t := time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
	t.Stop()
}

func globalDraw() int {
	return rand.Intn(10) // want "rand.Intn draws from the global rand source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global rand source"
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func threaded(rng *rand.Rand, xs []float64) float64 {
	return xs[rng.Intn(len(xs))]
}

func pureTime(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}
