package lint

import (
	"strings"
	"testing"
)

// fileNames extracts the base names of a package's parsed files.
func fileNames(p *Package) []string {
	var names []string
	for _, f := range p.Files {
		name := p.Fset.File(f.Pos()).Name()
		names = append(names, name[strings.LastIndexByte(name, '/')+1:])
	}
	return names
}

// TestLoadCgoDisabled pins build-tag file selection under the loader's Env
// override: with CGO_ENABLED=0 the cgo-tagged file drops out, with
// CGO_ENABLED=1 it joins the package.
func TestLoadCgoDisabled(t *testing.T) {
	for _, c := range []struct {
		env  string
		want int
	}{
		{"CGO_ENABLED=0", 1},
		{"CGO_ENABLED=1", 2},
	} {
		loader := NewLoader(".")
		loader.Env = []string{c.env}
		pkgs, err := loader.Load("./testdata/src/cgotag")
		if err != nil {
			t.Fatalf("%s: %v", c.env, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("%s: loaded %d packages, want 1", c.env, len(pkgs))
		}
		if got := len(pkgs[0].Files); got != c.want {
			t.Errorf("%s: %d files (%v), want %d", c.env, got, fileNames(pkgs[0]), c.want)
		}
	}
}

// TestLoadTestOnlyPackage pins the empty-package diagnostic: a package with
// only _test.go files resolves in go list but has nothing to analyze, and the
// loader must say so rather than produce a hollow package.
func TestLoadTestOnlyPackage(t *testing.T) {
	loader := NewLoader(".")
	_, err := loader.Load("./testdata/src/testonly")
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("Load(testonly) error = %v, want mention of no Go files", err)
	}
}

// TestCheckUnlistedImportPath pins the mismatch diagnostic for import paths
// absent from the go list closure — the failure mode of a vendored or
// renamed import whose on-disk path disagrees with the source's import.
func TestCheckUnlistedImportPath(t *testing.T) {
	loader := NewLoader(".")
	if _, err := loader.Load("./testdata/src/tagged"); err != nil {
		t.Fatal(err)
	}
	_, err := loader.check("vendor.example/renamed", map[string]bool{})
	if err == nil || !strings.Contains(err.Error(), "not in go list output") {
		t.Fatalf("check(unlisted) error = %v, want mention of go list output", err)
	}
}

// TestLoadTagsRoundTrip pins that BuildTags reach go list and change file
// selection.
func TestLoadTagsRoundTrip(t *testing.T) {
	plain := NewLoader(".")
	pkgs, err := plain.Load("./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("untagged load: %v", fileNames(pkgs[0]))
	}

	tagged := NewLoader(".")
	tagged.BuildTags = []string{"exttag"}
	pkgs, err = tagged.Load("./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 2 {
		t.Fatalf("tagged load: %v", fileNames(pkgs[0]))
	}
}

// TestLoadTagSets pins the shared-load semantics: one loader serves several
// tag sets, identical file lists collapse to one package, and differing file
// lists keep one package per variant.
func TestLoadTagSets(t *testing.T) {
	loader := NewLoader(".")

	// Two tag sets that select different files: both variants survive.
	pkgs, err := loader.LoadTagSets([][]string{nil, {"exttag"}}, "./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d package variants, want 2", len(pkgs))
	}
	if a, b := len(pkgs[0].Files), len(pkgs[1].Files); a+b != 3 {
		t.Errorf("variant file counts %d+%d, want 1+2", a, b)
	}

	// A tag set that does not change file selection dedupes to the cached
	// package — pointer-identical, so the analysis runs once.
	pkgs, err = loader.LoadTagSets([][]string{nil, {"unrelatedtag"}}, "./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d package variants, want 1 after dedupe", len(pkgs))
	}

	// Empty tag-set list means one untagged load.
	pkgs, err = loader.LoadTagSets(nil, "./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("default tag set: got %d packages", len(pkgs))
	}
}

// TestLoadTagSetsSharesState pins the cost model satellite: the second tag
// set must reuse the first's parse results, not re-parse the files.
func TestLoadTagSetsSharesState(t *testing.T) {
	loader := NewLoader(".")
	if _, err := loader.LoadTagSets([][]string{nil, {"exttag"}}, "./testdata/src/tagged"); err != nil {
		t.Fatal(err)
	}
	// base.go appears in both variants but is parsed once.
	if got := len(loader.parsed); got != 2 {
		t.Errorf("parse cache holds %d files, want 2 (base.go shared, extra.go once)", got)
	}
	if got := len(loader.checked); got != 2 {
		t.Errorf("check cache holds %d variants, want 2", got)
	}
}
