package lint

import "strings"

// Policy selects which checks run on a package.
type Policy struct {
	MapOrder  bool // range-over-map order sensitivity
	Entropy   bool // wall clock & global/unseeded rand bans
	CopyLocks bool // sync primitives copied by value
	NoGo      bool // go statements banned
}

// PolicyRule binds a package pattern to a policy. A pattern is either an
// exact import path or a prefix ending in "/..." matching the package and
// everything below it.
type PolicyRule struct {
	Pattern string
	Policy  Policy
}

// baseline applies module-wide: map iteration order must never leak into
// outputs, and sync primitives must never be copied. Goroutines and wall
// clocks are fine outside the simulator.
var baseline = Policy{MapOrder: true, CopyLocks: true}

// sim is the full determinism contract for simulator packages: everything in
// baseline, plus no entropy except through seeded sources, and no goroutines
// — parallelism belongs exclusively to internal/exec.
var sim = Policy{MapOrder: true, CopyLocks: true, Entropy: true, NoGo: true}

// DefaultPolicies is the repository policy table. The most specific
// (longest) matching pattern wins.
var DefaultPolicies = []PolicyRule{
	{"anyopt/...", baseline},

	// Simulator packages: results must be a pure function of seeds.
	{"anyopt/internal/bgp", sim},
	{"anyopt/internal/bgp/wire", sim},
	{"anyopt/internal/bgp/invariant", sim},
	{"anyopt/internal/netsim", sim},
	{"anyopt/internal/topology", sim},
	{"anyopt/internal/core/...", sim},

	// The real-network BGP speaker runs hold timers and read deadlines over
	// TCP sessions; wall clock and goroutines are inherent to it. It still
	// gets the baseline checks.
	{"anyopt/internal/bgp/speaker", baseline},

	// The worker pool is the one place goroutines are allowed; it is also
	// outside the sim's entropy contract (it reads only worker counts).
	{"anyopt/internal/exec", baseline},
}

// PolicyFor resolves the policy for an import path: the longest matching
// pattern wins; packages matching no rule get no checks.
func PolicyFor(rules []PolicyRule, path string) Policy {
	var best string
	var out Policy
	for _, r := range rules {
		if !patternMatches(r.Pattern, path) {
			continue
		}
		if len(r.Pattern) > len(best) {
			best, out = r.Pattern, r.Policy
		}
	}
	return out
}

func patternMatches(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}
