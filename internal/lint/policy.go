package lint

import "strings"

// Policy selects which checks run on a package.
type Policy struct {
	MapOrder  bool // range-over-map order sensitivity
	Entropy   bool // wall clock & global/unseeded rand bans
	NoRand    bool // with Entropy: ban math/rand outright, seeded or not
	CopyLocks bool // sync primitives copied by value
	NoGo      bool // go statements banned
	SnapImmut bool // writes/alias leaks on immutable snapshot types
	AtomicUse bool // atomic fields only via Load/Store/Add; guarded writers
}

// PolicyRule binds a package pattern to a policy. A pattern is either an
// exact import path or a prefix ending in "/..." matching the package and
// everything below it.
type PolicyRule struct {
	Pattern string
	Policy  Policy
}

// baseline applies module-wide: map iteration order must never leak into
// outputs, sync primitives must never be copied, goroutines belong only to
// the packages explicitly granted goOwner below — everything else routes
// parallelism through internal/exec — and the mutation-invariant tier
// (snapshot immutability, atomic discipline) holds everywhere snapshots or
// guarded atomics are in scope. Wall clocks are fine outside the simulator.
var baseline = Policy{MapOrder: true, CopyLocks: true, NoGo: true, SnapImmut: true, AtomicUse: true}

// goOwner relaxes baseline for the sanctioned goroutine owners: the worker
// pool itself, the real-network BGP speaker (hold timers over TCP), the
// orchestrator's concurrent servers, and the API's async discovery job
// runner. The mutation-invariant tier stays on — goroutine owners are
// exactly where a stray snapshot write would race.
var goOwner = Policy{MapOrder: true, CopyLocks: true, SnapImmut: true, AtomicUse: true}

// sim is the full determinism contract for simulator packages: everything in
// baseline, plus no entropy except through seeded sources, and no goroutines
// — parallelism belongs exclusively to internal/exec.
var sim = Policy{MapOrder: true, CopyLocks: true, Entropy: true, NoGo: true, SnapImmut: true, AtomicUse: true}

// simPure tightens sim for packages that should hold no entropy source at
// all, seeded or not: their randomness budget is zero, so an imported
// math/rand is a design smell regardless of how it is constructed. Jitter
// reaches bgp through explicit nonce parameters, noise reaches measurements
// through probe's NoiseModel, and chaos reaches the transport path only
// through internal/fault.
var simPure = Policy{MapOrder: true, CopyLocks: true, Entropy: true, NoRand: true, NoGo: true, SnapImmut: true, AtomicUse: true}

// DefaultPolicies is the repository policy table. The most specific
// (longest) matching pattern wins.
var DefaultPolicies = []PolicyRule{
	{"anyopt/...", baseline},

	// Simulator packages: results must be a pure function of seeds — and
	// these hold no RNG of their own, so math/rand is banned outright.
	{"anyopt/internal/bgp", simPure},
	{"anyopt/internal/bgp/wire", simPure},
	{"anyopt/internal/bgp/invariant", simPure},
	{"anyopt/internal/netsim", simPure},
	{"anyopt/internal/core/...", simPure},

	// The columnar campaign stores — the preference matrix in core/prefs and
	// the RTT table in core/discovery — are pinned here explicitly (the
	// core/... rule already covers them) because their contract is the
	// strictest in the repo: snapshot contents must be byte-identical across
	// worker counts, shard counts and store layouts, so any map-order leak
	// or entropy source in them invalidates the campaign determinism proofs.
	{"anyopt/internal/core/prefs", simPure},
	{"anyopt/internal/core/discovery", simPure},

	// Campaign persistence and shard coordination: streaming snapshot
	// serialization and checkpoint journals must be byte-deterministic (the
	// shard merge proof rests on it), so the package holds no entropy and no
	// goroutines of its own — shard parallelism lives in separate OS
	// processes, not in-process concurrency.
	{"anyopt/internal/campaign", simPure},

	// Seeded-RNG owners: these construct their own rand.New(NewSource(seed))
	// — topology generation, SPLPO's randomized search, probe noise — so they
	// get sim without the outright rand ban.
	{"anyopt/internal/topology", sim},
	{"anyopt/internal/core/splpo", sim},
	{"anyopt/internal/probe", sim},

	// The churn reconciler computes cones and patches snapshots — pure
	// derivation from topology state and measurement results. Its entropy
	// budget is zero (churn planning entropy lives in internal/fault) and its
	// goroutine budget is zero (the background loop lives in internal/api).
	{"anyopt/internal/reconcile", simPure},

	// The fault injector is the only package on the simulated transport path
	// allowed to own chaos entropy; every stream it holds is derived from
	// (seed, nonce, attempt).
	{"anyopt/internal/fault", sim},

	// The real-network BGP speaker runs hold timers and read deadlines over
	// TCP sessions; wall clock and goroutines are inherent to it. It still
	// gets the map-order and copylocks checks.
	{"anyopt/internal/bgp/speaker", goOwner},

	// The worker pool is the canonical goroutine owner; it is also outside
	// the sim's entropy contract (it reads only worker counts) — and it is
	// where retry/timeout sleeps live, since sim packages cannot call
	// time.Sleep.
	{"anyopt/internal/exec", goOwner},

	// The orchestrator serves concurrent measurement agents over real
	// sockets.
	{"anyopt/internal/orchestrator", goOwner},

	// The HTTP API runs async discovery jobs in the background so campaigns
	// never block the lock-free read path; the job runner is its goroutine.
	{"anyopt/internal/api", goOwner},
}

// PolicyFor resolves the policy for an import path: the longest matching
// pattern wins; packages matching no rule get no checks.
func PolicyFor(rules []PolicyRule, path string) Policy {
	var best string
	var out Policy
	for _, r := range rules {
		if !patternMatches(r.Pattern, path) {
			continue
		}
		if len(r.Pattern) > len(best) {
			best, out = r.Pattern, r.Policy
		}
	}
	return out
}

func patternMatches(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}
