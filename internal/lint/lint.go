// Package lint is anyoptlint's analysis engine: a standard-library-only
// static analyzer that enforces the repository's determinism and concurrency
// invariants on the simulator packages.
//
// The paper's predictions rest on exactly reproducible BGP decision outcomes
// — including the arrival-order tie-breaker — so properties the codebase
// merely followed by convention are machine-checked here:
//
//   - maporder: no range over a map whose body writes to a slice, store,
//     writer, or channel, unless the result is provably order-insensitive or
//     the accumulated slice is sorted before use. Go randomizes map iteration
//     order per run, so any such loop silently injects nondeterminism into
//     campaign results. Suppressible with `//lint:orderinvariant <reason>`.
//   - entropy: no wall-clock reads (time.Now and friends) and no global or
//     unseeded math/rand in simulator packages; all entropy must flow from a
//     seeded source parameter so experiments replay bit-identically. Packages
//     whose policy also sets NoRand may not touch math/rand at all — their
//     entropy arrives pre-drawn (jitter nonces, noise models, fault
//     injectors), never from an RNG of their own.
//   - copylocks: no sync.Mutex / sync.WaitGroup (or values containing one)
//     copied by value anywhere in the module.
//   - nogo: no `go` statement in simulator packages — concurrency is the
//     exclusive business of internal/exec's worker pool, which guarantees
//     scheduling cannot leak into results.
//   - snapimmut: no write to — or mutable alias leaked from — an immutable
//     campaign snapshot outside its sanctioned writers. The lock-free serving
//     path reads snapshots with no coordination at all; this check is what
//     makes that sound at compile time instead of by storm-test luck.
//     Suppressible with `//lint:mutinvariant <reason>`.
//   - atomicuse: sync/atomic fields are touched only through their
//     Load/Store/Add methods, and guarded fields (System.snap) mutate only
//     inside their sanctioned write points.
//
// The sibling package internal/lint/escape adds the allocation gate: a
// compiler-driven escape-analysis pass over the hot-path packages, diffed
// against a checked-in baseline, so the zero-allocation event engine cannot
// silently regain heap traffic.
//
// Which checks apply to which package is driven by the policy table in
// policy.go.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check names the check that produced it (maporder, entropy, copylocks,
	// nogo, snapimmut, atomicuse, escape).
	Check string
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Check)
}

// diagnosticJSON is the machine-readable rendering of one Diagnostic, shaped
// for CI line annotators.
type diagnosticJSON struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// Report is the machine-readable result of one lint run, emitted by
// anyoptlint -json.
type Report struct {
	// Findings lists every diagnostic in position order.
	Findings []diagnosticJSON `json:"findings"`
	// Packages counts packages analyzed; FindingPackages counts packages
	// with at least one finding.
	Packages        int `json:"packages"`
	FindingPackages int `json:"finding_packages"`
}

// NewReport assembles the JSON report for diags over analyzed packages.
func NewReport(diags []Diagnostic, packages, findingPackages int) Report {
	rep := Report{
		Findings:        make([]diagnosticJSON, 0, len(diags)),
		Packages:        packages,
		FindingPackages: findingPackages,
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, diagnosticJSON{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Check: d.Check, Message: d.Message,
		})
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Runner applies a policy table to loaded packages.
type Runner struct {
	// Policies maps packages to enabled checks; nil selects DefaultPolicies.
	Policies []PolicyRule
	// SnapshotRules configures the snapimmut check; nil selects
	// DefaultSnapshotRules.
	SnapshotRules []SnapshotRule
	// AtomicGuards configures the atomicuse writer sets; nil selects
	// DefaultAtomicGuards.
	AtomicGuards []AtomicGuard
}

// Run analyzes pkgs and returns all diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	rules := r.Policies
	if rules == nil {
		rules = DefaultPolicies
	}
	snapRules := r.SnapshotRules
	if snapRules == nil {
		snapRules = DefaultSnapshotRules
	}
	guards := r.AtomicGuards
	if guards == nil {
		guards = DefaultAtomicGuards
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, r.runPackage(pkg, rules, snapRules, guards)...)
	}
	SortDiagnostics(diags)
	return diags
}

// runPackage analyzes one package under the resolved configuration.
func (r *Runner) runPackage(pkg *Package, rules []PolicyRule, snapRules []SnapshotRule, guards []AtomicGuard) []Diagnostic {
	p := PolicyFor(rules, pkg.Path)
	ann := collectAnnotations(pkg)
	var diags []Diagnostic
	diags = append(diags, ann.diags...)
	if p.MapOrder {
		diags = append(diags, checkMapOrder(pkg, ann)...)
	}
	if p.Entropy {
		diags = append(diags, checkEntropy(pkg, p.NoRand)...)
	}
	if p.CopyLocks {
		diags = append(diags, checkCopyLocks(pkg)...)
	}
	if p.NoGo {
		diags = append(diags, checkNoGo(pkg)...)
	}
	if p.SnapImmut {
		diags = append(diags, checkSnapImmut(pkg, ann, snapRules)...)
	}
	if p.AtomicUse {
		diags = append(diags, checkAtomicUse(pkg, ann, guards)...)
	}
	return diags
}

// SortDiagnostics orders diags by file, line, column, then message — the
// stable order every output mode uses.
// DedupeDiagnostics removes exact duplicates from a sorted slice. Duplicates
// arise when LoadTagSets analyzes two file-list variants of one package (a
// tag set adds files): the shared files are walked once per variant and
// produce identical findings.
func DedupeDiagnostics(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last.Pos == d.Pos && last.Check == d.Check && last.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
