// Package lint is anyoptlint's analysis engine: a standard-library-only
// static analyzer that enforces the repository's determinism and concurrency
// invariants on the simulator packages.
//
// The paper's predictions rest on exactly reproducible BGP decision outcomes
// — including the arrival-order tie-breaker — so properties the codebase
// merely followed by convention are machine-checked here:
//
//   - maporder: no range over a map whose body writes to a slice, store,
//     writer, or channel, unless the result is provably order-insensitive or
//     the accumulated slice is sorted before use. Go randomizes map iteration
//     order per run, so any such loop silently injects nondeterminism into
//     campaign results. Suppressible with `//lint:orderinvariant <reason>`.
//   - entropy: no wall-clock reads (time.Now and friends) and no global or
//     unseeded math/rand in simulator packages; all entropy must flow from a
//     seeded source parameter so experiments replay bit-identically. Packages
//     whose policy also sets NoRand may not touch math/rand at all — their
//     entropy arrives pre-drawn (jitter nonces, noise models, fault
//     injectors), never from an RNG of their own.
//   - copylocks: no sync.Mutex / sync.WaitGroup (or values containing one)
//     copied by value anywhere in the module.
//   - nogo: no `go` statement in simulator packages — concurrency is the
//     exclusive business of internal/exec's worker pool, which guarantees
//     scheduling cannot leak into results.
//
// Which checks apply to which package is driven by the policy table in
// policy.go.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check names the check that produced it (maporder, entropy, copylocks,
	// nogo).
	Check string
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Check)
}

// Runner applies a policy table to loaded packages.
type Runner struct {
	// Policies maps packages to enabled checks; nil selects DefaultPolicies.
	Policies []PolicyRule
}

// Run analyzes pkgs and returns all diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	rules := r.Policies
	if rules == nil {
		rules = DefaultPolicies
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		p := PolicyFor(rules, pkg.Path)
		ann := collectAnnotations(pkg)
		diags = append(diags, ann.diags...)
		if p.MapOrder {
			diags = append(diags, checkMapOrder(pkg, ann)...)
		}
		if p.Entropy {
			diags = append(diags, checkEntropy(pkg, p.NoRand)...)
		}
		if p.CopyLocks {
			diags = append(diags, checkCopyLocks(pkg)...)
		}
		if p.NoGo {
			diags = append(diags, checkNoGo(pkg)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}
