package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkMapOrder flags `range` statements over maps whose bodies perform
// order-sensitive writes. Go randomizes map iteration order on every run, so
// feeding it into a slice, writer, channel, or store makes the result differ
// between runs — exactly the nondeterminism the simulator must exclude.
//
// A loop is accepted when its writes are provably order-insensitive:
//
//   - writes into maps (m[k] = v, delete) — keyed, order cannot matter
//   - commutative numeric accumulation (+=, *=, |=, &=, ^=, ++, --)
//   - writes to variables declared inside the loop body
//   - slice writes indexed by the range key itself (s[k] = v)
//   - appends to a slice that is sorted later in the same function
//
// Anything else needs the keys sorted before iteration, or an explicit
// `//lint:orderinvariant <reason>` annotation.
func checkMapOrder(pkg *Package, ann *annotations) []Diagnostic {
	c := &mapOrderChecker{pkg: pkg, ann: ann}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFuncBody(fn.Body)
				}
				return false
			}
			return true
		})
	}
	return c.diags
}

type mapOrderChecker struct {
	pkg   *Package
	ann   *annotations
	diags []Diagnostic
}

// checkFuncBody scans one function body (recursing into function literals,
// each of which becomes its own sort-exemption scope).
func (c *mapOrderChecker) checkFuncBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			c.checkFuncBody(s.Body)
			return false
		case *ast.RangeStmt:
			if c.isMapRange(s) && !c.ann.suppressed(c.pkg.Fset, s) {
				c.checkRange(s, body)
			}
		}
		return true
	})
}

func (c *mapOrderChecker) isMapRange(s *ast.RangeStmt) bool {
	t := c.pkg.Info.TypeOf(s.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkRange analyzes one map-range statement inside funcBody.
func (c *mapOrderChecker) checkRange(rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	keyObj := c.identObject(rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // a deferred/spawned closure is a different story
		case *ast.RangeStmt:
			if s != rng && c.isMapRange(s) {
				return false // nested map ranges report independently
			}
		case *ast.SendStmt:
			if obj := c.rootObject(s.Chan); c.outside(obj, rng) {
				c.report(s.Pos(), rng, "sends to channel %s", types.ExprString(s.Chan))
			}
		case *ast.IncDecStmt:
			return false // counters commute
		case *ast.AssignStmt:
			c.checkAssign(s, rng, keyObj, funcBody)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				c.checkCall(call, rng)
			}
		}
		return true
	})
}

// checkAssign classifies one assignment inside a map-range body.
func (c *mapOrderChecker) checkAssign(s *ast.AssignStmt, rng *ast.RangeStmt, keyObj types.Object, funcBody *ast.BlockStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative accumulation on numbers is order-insensitive; string
		// concatenation is not.
		for _, lhs := range s.Lhs {
			if t := c.pkg.Info.TypeOf(lhs); t != nil && isStringy(t) {
				if obj := c.rootObject(lhs); c.outside(obj, rng) {
					c.report(s.Pos(), rng, "concatenates onto string %s", types.ExprString(lhs))
				}
			}
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	for i, lhs := range s.Lhs {
		// Writes into maps are keyed and therefore order-insensitive.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			base := c.pkg.Info.TypeOf(idx.X)
			if base != nil {
				switch base.Underlying().(type) {
				case *types.Map:
					continue
				case *types.Slice, *types.Array, *types.Pointer:
					// s[k] = v (or s[k-1] = v, any index computed from the
					// key alone) writes a key-distinct slot: keyed, so order
					// cannot matter.
					if keyObj != nil && c.keyDerived(idx.Index, keyObj) {
						continue
					}
					if obj := c.rootObject(idx.X); c.outside(obj, rng) {
						c.report(s.Pos(), rng, "writes element of %s at a loop-dependent position", types.ExprString(idx.X))
					}
					continue
				}
			}
		}
		// append onto an outside slice: order-sensitive unless sorted later.
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else {
			rhs = s.Rhs[0] // tuple assignment from one call
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if c.isBuiltinAppend(call) {
				obj := c.rootObject(lhs)
				if c.outside(obj, rng) && !c.sortedAfter(lhs, rng, funcBody) {
					c.report(s.Pos(), rng, "appends to slice %s, which is never sorted afterwards", types.ExprString(lhs))
				}
			} else {
				c.checkCall(call, rng)
			}
		}
	}
}

// checkCall flags calls that push loop data into writers or stores.
func (c *mapOrderChecker) checkCall(call *ast.CallExpr, rng *ast.RangeStmt) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level printers: fmt.Fprint*/Print* and the log package write
	// to a stream in call order.
	if pkgName, ok := c.pkg.Info.Uses[identOf(sel.X)].(*types.PkgName); ok {
		path := pkgName.Imported().Path()
		name := sel.Sel.Name
		if path == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			if c.outside(c.rootObject(call.Args[0]), rng) {
				c.report(call.Pos(), rng, "writes to %s via fmt.%s", types.ExprString(call.Args[0]), name)
			}
			return
		}
		if path == "fmt" && strings.HasPrefix(name, "Print") {
			c.report(call.Pos(), rng, "prints to stdout via fmt.%s", name)
			return
		}
		if path == "log" {
			c.report(call.Pos(), rng, "logs via log.%s", sel.Sel.Name)
			return
		}
		return
	}
	// Method calls on outside receivers that look like sequenced writes:
	// either the receiver implements io.Writer, or the method name says it
	// records/appends state (prefs.Store.RecordOrdered, Table.AddRow, ...).
	recvObj := c.rootObject(sel.X)
	if !c.outside(recvObj, rng) {
		return
	}
	if c.pkg.Info.Selections[sel] == nil {
		return // not a method call (qualified type conversion etc.)
	}
	recvType := c.pkg.Info.TypeOf(sel.X)
	if recvType == nil {
		return
	}
	if implementsWriter(recvType) {
		c.report(call.Pos(), rng, "writes to %s (an io.Writer) in map order", types.ExprString(sel.X))
		return
	}
	if isStoreMethodName(sel.Sel.Name) {
		c.report(call.Pos(), rng, "calls %s.%s, which records results in map order", types.ExprString(sel.X), sel.Sel.Name)
	}
}

// storeMethodPrefixes mark methods that sequence their arguments into the
// receiver. Keyed setters (Set, Put) are excluded: like map writes, they are
// naturally order-insensitive.
var storeMethodPrefixes = []string{
	"Add", "Append", "Record", "Push", "Insert", "Write", "Print",
	"Emit", "Enqueue", "Log", "Send",
}

func isStoreMethodName(name string) bool {
	for _, p := range storeMethodPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// keyDerived reports whether every identifier in an index expression
// resolves to the range key (constants and conversions are fine): such an
// index is injective in the key, so the write is keyed.
func (c *mapOrderChecker) keyDerived(idx ast.Expr, keyObj types.Object) bool {
	derived := true
	sawKey := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.objectOf(id)
		switch {
		case obj == keyObj:
			sawKey = true
		case obj == nil, isConstOrType(obj):
		default:
			derived = false
		}
		return true
	})
	return derived && sawKey
}

func isConstOrType(obj types.Object) bool {
	switch obj.(type) {
	case *types.Const, *types.TypeName, *types.Builtin:
		return true
	}
	return false
}

// sortedAfter reports whether expr is passed to a recognized sorting function
// after the range statement, anywhere later in the enclosing function body.
func (c *mapOrderChecker) sortedAfter(expr ast.Expr, rng *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	want := types.ExprString(expr)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgName, ok := c.pkg.Info.Uses[identOf(sel.X)].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if (path == "sort" || path == "slices") && strings.HasPrefix(sel.Sel.Name, "Sort") ||
			path == "sort" && (sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable" ||
				sel.Sel.Name == "Strings" || sel.Sel.Name == "Ints" || sel.Sel.Name == "Float64s") {
			if types.ExprString(call.Args[0]) == want {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *mapOrderChecker) isBuiltinAppend(call *ast.CallExpr) bool {
	id := identOf(call.Fun)
	if id == nil {
		return false
	}
	b, ok := c.pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject unwraps an expression to its base identifier's object: t.rows
// roots at t, s[i] at s, (*p).x at p.
func (c *mapOrderChecker) rootObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return c.objectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *mapOrderChecker) identObject(e ast.Expr) types.Object {
	id := identOf(e)
	if id == nil {
		return nil
	}
	return c.objectOf(id)
}

func (c *mapOrderChecker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return c.pkg.Info.Uses[id]
}

// outside reports whether obj is declared outside the range statement (and
// therefore survives it). Unresolvable roots count as outside, erring toward
// reporting.
func (c *mapOrderChecker) outside(obj types.Object, rng *ast.RangeStmt) bool {
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func (c *mapOrderChecker) report(pos token.Pos, rng *ast.RangeStmt, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:   c.pkg.Fset.Position(pos),
		Check: "maporder",
		Message: fmt.Sprintf("map iteration %s: ", types.ExprString(rng.X)) +
			fmt.Sprintf(format, args...) +
			"; iterate sorted keys or annotate //lint:orderinvariant with a reason",
	})
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// implementsWriter reports whether t (or *t) has a Write([]byte) (int, error)
// method — the structural io.Writer contract.
func implementsWriter(t types.Type) bool {
	if types.Implements(t, writerIface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), writerIface)
	}
	return false
}

// writerIface is io.Writer built structurally, so the check works even when
// the linted package never imports io.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()
