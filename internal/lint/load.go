package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	// Path is the package's import path (e.g. "anyopt/internal/bgp").
	Path string
	// Dir is the package's source directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
}

// Loader resolves, parses, and type-checks module packages without any
// dependency beyond the standard library and the go tool: module sources are
// type-checked from source, while external (standard-library) imports are
// satisfied from compiler export data located via `go list -export`.
type Loader struct {
	// Dir is the module root the go tool runs in.
	Dir string
	// BuildTags are extra build tags (e.g. "invariants") passed to go list.
	BuildTags []string
	// Env holds extra environment entries (KEY=value) for the go tool, on
	// top of the ambient environment. Tests use it to pin CGO_ENABLED.
	Env []string

	fset    *token.FileSet
	std     types.Importer    // export-data importer for non-module deps
	exports map[string]string // import path -> export data file, merged across loads
	parsed  map[string]*ast.File
	checked map[string]*Package // (path, file list) -> package, reused across tag sets
	pkgs    map[string]*Package // loaded module packages by import path, per Load call
	listed  map[string]*listedPackage
}

// NewLoader creates a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		parsed:  make(map[string]*ast.File),
		checked: make(map[string]*Package),
	}
}

// goList runs `go list` with the loader's tags and decodes the JSON stream.
func (l *Loader) goList(args ...string) ([]*listedPackage, error) {
	cmd := []string{"list", "-json=ImportPath,Dir,GoFiles,Imports,Standard,Export"}
	if len(l.BuildTags) > 0 {
		cmd = append(cmd, "-tags="+strings.Join(l.BuildTags, ","))
	}
	cmd = append(cmd, args...)
	out, err := l.runGo(cmd...)
	if err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) runGo(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	if len(l.Env) > 0 {
		cmd.Env = append(os.Environ(), l.Env...)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// Load resolves patterns (as the go tool understands them) to packages, then
// parses and type-checks every non-standard package found, in dependency
// order. Standard-library imports are satisfied from export data.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.listed = make(map[string]*listedPackage, len(roots))
	for _, p := range roots {
		l.listed[p.ImportPath] = p
	}

	// Collect the non-module dependency closure and fetch its export data in
	// one additional go list; plain `go list -deps` does not compile anything,
	// so module sources with analyzer findings never need to build cleanly
	// under vet-style gates to be lintable. Export data already fetched by an
	// earlier Load (another tag set) is reused, not re-listed.
	var external []string
	for _, p := range roots {
		if p.Standard {
			if _, ok := l.exports[p.ImportPath]; !ok {
				external = append(external, p.ImportPath)
			}
		}
	}
	if len(external) > 0 {
		exported, err := l.goList(append([]string{"-export"}, external...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range exported {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(f)
		})
	}

	l.pkgs = make(map[string]*Package)
	// Type-check only packages selected by the patterns themselves plus any
	// module-local dependencies, in dependency order via recursion.
	var out []*Package
	seen := make(map[string]bool)
	for _, p := range roots {
		if p.Standard {
			continue
		}
		pkg, err := l.check(p.ImportPath, make(map[string]bool))
		if err != nil {
			return nil, err
		}
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
	}
	return out, nil
}

// check type-checks one module package, recursing into module dependencies.
func (l *Loader) check(path string, inProgress map[string]bool) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if inProgress[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	inProgress[path] = true
	defer delete(inProgress, path)

	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not in go list output", path)
	}
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("lint: package %q has no Go files under the active build tags", path)
	}
	// A package whose build-tag-selected file list matches an earlier Load is
	// the same analysis input; reuse the type-checked result.
	key := packageKey(lp)
	if pkg, ok := l.checked[key]; ok {
		l.pkgs[path] = pkg
		return pkg, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := l.parseFile(filepath.Join(lp.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Resolve module dependencies first so imports below find them.
	for _, imp := range lp.Imports {
		if dep, ok := l.listed[imp]; ok && !dep.Standard {
			if _, err := l.check(imp, inProgress); err != nil {
				return nil, err
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if pkg, ok := l.pkgs[imp]; ok {
				return pkg.Types, nil
			}
			return l.std.Import(imp)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: lp.Dir, Files: files, Types: tpkg, Info: info, Fset: l.fset}
	l.pkgs[path] = pkg
	l.checked[key] = pkg
	return pkg, nil
}

// parseFile parses path once per Loader, sharing the result across tag sets.
func (l *Loader) parseFile(path string) (*ast.File, error) {
	if f, ok := l.parsed[path]; ok {
		return f, nil
	}
	f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	l.parsed[path] = f
	return f, nil
}

// packageKey identifies a package by its import path and the exact file list
// the active build tags selected.
func packageKey(lp *listedPackage) string {
	return lp.ImportPath + "\x00" + strings.Join(lp.GoFiles, "\x00")
}

// LoadTagSets loads patterns once per tag set — each element of tagSets is
// one build-tag combination, nil meaning no extra tags — sharing the file
// set, parse cache, export data, and type-check results across loads. The
// result is the union of packages, deduplicated by (import path, file list):
// a package whose tag-selected files are identical under two tag sets
// appears once, so downstream analysis does not produce duplicate findings
// for it. A package that gains files under a tag set (e.g. -tags invariants)
// appears once per distinct file list.
func (l *Loader) LoadTagSets(tagSets [][]string, patterns ...string) ([]*Package, error) {
	if len(tagSets) == 0 {
		tagSets = [][]string{nil}
	}
	savedTags := l.BuildTags
	defer func() { l.BuildTags = savedTags }()

	var out []*Package
	seen := make(map[*Package]bool)
	for _, tags := range tagSets {
		l.BuildTags = tags
		pkgs, err := l.Load(patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			// Pointer identity is the dedupe: check() returns the cached
			// *Package when the file list is unchanged across tag sets.
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
