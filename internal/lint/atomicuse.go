package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkAtomicUse enforces the atomic-field discipline behind the lock-free
// read path: a sync/atomic field (atomic.Pointer, the atomic counters) is a
// synchronization point, and the only sound way to touch one is through its
// Load/Store/Add/Swap/CompareAndSwap methods. Anything else — taking its
// address, copying it into a variable, comparing it, passing it to a call —
// either races or silently snapshots the value outside the memory model the
// surrounding code was proven against.
//
// Guarded fields go further: their mutating methods (Store, Swap, Add,
// CompareAndSwap, ...) may be called only from the functions named in the
// guard's writer set. System.snap is the canonical case — every campaign
// publication must flow through InstallCampaign, or the single-write-point
// argument in DESIGN.md §10 is fiction. A plain read mixed in, or an ad-hoc
// mutex pretending to guard the field, shows up as an out-of-discipline
// access at the site that performs it. Suppress only with
// `//lint:mutinvariant <reason>`.
func checkAtomicUse(pkg *Package, ann *annotations, guards []AtomicGuard) []Diagnostic {
	c := &atomicUseChecker{pkg: pkg, ann: ann, guards: guards, sanctioned: make(map[ast.Node]bool)}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return c.diags
}

// AtomicGuard restricts who may mutate one atomic field.
type AtomicGuard struct {
	// Struct is the qualified owning type: "<import path>.<Name>".
	Struct string
	// Field is the atomic field's name.
	Field string
	// Writers names the functions allowed to call mutating methods (Store,
	// Swap, Add, CompareAndSwap, Or, And) on the field. Load stays free.
	Writers map[string]bool
}

// DefaultAtomicGuards pins the System's snapshot pointer and generation
// counter to the two campaign write points: InstallCampaign (full campaigns)
// and PatchCampaign (reconciler row patches).
var DefaultAtomicGuards = []AtomicGuard{
	{Struct: "anyopt.System", Field: "snap", Writers: map[string]bool{"InstallCampaign": true, "PatchCampaign": true}},
	{Struct: "anyopt.System", Field: "gen", Writers: map[string]bool{"InstallCampaign": true, "PatchCampaign": true}},
}

// atomicMethods are the sync/atomic value methods; mutating ones are marked
// true.
var atomicMethods = map[string]bool{
	"Load":  false,
	"Store": true, "Swap": true, "Add": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

type atomicUseChecker struct {
	pkg    *Package
	ann    *annotations
	guards []AtomicGuard
	diags  []Diagnostic

	// sanctioned marks atomic-field selector nodes consumed by an allowed
	// method call; any atomic-field selector not in here is out of
	// discipline.
	sanctioned map[ast.Node]bool
}

func (c *atomicUseChecker) checkFunc(fn *ast.FuncDecl) {
	// Pass 1: bless selectors used as receivers of atomic method calls and
	// enforce writer sets on mutators.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := ast.Unparen(method.X)
		sel, ok := recv.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner, field, ok := c.atomicField(sel)
		if !ok {
			return true
		}
		mutates, known := atomicMethods[method.Sel.Name]
		if !known {
			return true // not an atomic API method; pass 2 will flag the field use
		}
		c.sanctioned[sel] = true
		if mutates {
			if g, guarded := c.guardFor(owner, field); guarded && !g.Writers[fn.Name.Name] {
				c.report(call, "%s.%s.%s outside its writer set (%s); this atomic field has a single sanctioned write point",
					owner, field, method.Sel.Name, writerList(g))
			}
		}
		return true
	})
	// Pass 2: any remaining atomic-field selector is a plain (non-method)
	// use: address-of, copy, comparison, call argument.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || c.sanctioned[sel] {
			return true
		}
		owner, field, ok := c.atomicField(sel)
		if !ok {
			return true
		}
		c.report(sel, "%s.%s accessed outside the atomic Load/Store/Add discipline; plain reads, copies, and address-taking race with lock-free readers",
			owner, field)
		return true
	})
}

// atomicField resolves sel to (owning type, field name) when it selects a
// struct field whose type lives in sync/atomic.
func (c *atomicUseChecker) atomicField(sel *ast.SelectorExpr) (owner, field string, ok bool) {
	s := c.pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", "", false
	}
	if !isAtomicType(s.Obj().Type()) {
		return "", "", false
	}
	return qualifiedName(s.Recv()), sel.Sel.Name, true
}

func (c *atomicUseChecker) guardFor(owner, field string) (AtomicGuard, bool) {
	for _, g := range c.guards {
		if g.Struct == owner && g.Field == field {
			return g, true
		}
	}
	return AtomicGuard{}, false
}

func (c *atomicUseChecker) report(n ast.Node, format string, args ...any) {
	if c.ann.suppressedBy(mutInvariantDirective, c.pkg.Fset, n) {
		return
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(n.Pos()),
		Check:   "atomicuse",
		Message: fmt.Sprintf(format, args...) + "; or annotate //lint:mutinvariant with a reason",
	})
}

// isAtomicType reports whether t is a named type from sync/atomic (including
// instantiations of atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// qualifiedName renders a (possibly pointer) named type as
// "<import path>.<Name>" for guard matching.
func qualifiedName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func writerList(g AtomicGuard) string {
	names := make([]string, 0, len(g.Writers))
	for w := range g.Writers {
		names = append(names, w)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
