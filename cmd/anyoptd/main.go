// Command anyoptd serves the AnyOpt pipeline over a JSON HTTP API (see
// internal/api for the endpoint list):
//
//	anyoptd -listen 127.0.0.1:8080
//	curl -s localhost:8080/v1/testbed
//	curl -s -X POST localhost:8080/v1/discover          # async job
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s 'localhost:8080/v1/optimize?k=12'
//	curl -s -X POST localhost:8080/v1/churn -d '{"seed":7}'   # inject churn
//	curl -s localhost:8080/v1/reconcile                 # reconciler health
//	curl -s localhost:8080/metrics
//
// With -load it runs the in-process load harness instead of serving: a
// worker fleet hammers /v1/predict through the handler (no sockets, no
// client overhead), first against an idle server, then with a discovery job
// in flight, and reports QPS plus latency percentiles for both phases as
// JSON. The p99 ratio between the phases is the number the snapshot
// concurrency model is accountable for: a background campaign must not
// queue prediction traffic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"anyopt"
	"anyopt/internal/api"
	"anyopt/internal/campaign"
	"anyopt/internal/exec"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("anyoptd: ")
	var (
		listen        = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		scale         = flag.String("scale", "test", "topology scale: test or paper")
		seed          = flag.Int64("seed", 1, "topology seed")
		campaignFile  = flag.String("campaign", "", "preload discovery results from this snapshot")
		checkpointDir = flag.String("checkpoint-dir", "", "enable ?checkpoint=name on discovery jobs, journaling under this directory")
		load          = flag.Bool("load", false, "run the load harness instead of serving")
		loadWorkers   = flag.Int("load-workers", 8, "load harness worker count")
		loadDur       = flag.Duration("load-duration", 3*time.Second, "load harness per-phase duration")
		loadOut       = flag.String("load-out", "", "write the load report JSON here (default stdout)")
	)
	flag.Parse()

	opts := anyopt.DefaultOptions()
	if *scale == "paper" {
		opts = anyopt.PaperScaleOptions()
	}
	opts.Topology.Seed = *seed
	opts.Testbed.Seed = *seed

	sys, err := anyopt.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *campaignFile != "" {
		f, err := os.Open(*campaignFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := campaign.Load(f, sys); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("campaign loaded from %s", *campaignFile)
	}

	apiSrv := api.NewServer(sys)
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		apiSrv.SetCheckpointDir(*checkpointDir)
		// A crash mid-reconcile leaves patch records without a commit mark:
		// re-apply the journaled churn and queue the unfinished cone repairs
		// rather than serving pre-churn rows as fresh.
		if n, err := apiSrv.ResumePendingRepairs(); err != nil {
			log.Fatal(err)
		} else if n > 0 {
			log.Printf("resumed %d unfinished cone repair(s) from %s", n, *checkpointDir)
		}
	}

	if *load {
		if err := runLoad(sys, apiSrv, *loadWorkers, *loadDur, *loadOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving %v on http://%s (scale=%s seed=%d)", sys.Topo.ComputeStats(), *listen, *scale, *seed)
	log.Fatal(srv.ListenAndServe())
}

// phaseReport is one load phase's outcome.
type phaseReport struct {
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P90us    float64 `json:"p90_us"`
	P99us    float64 `json:"p99_us"`
}

// loadReport is the harness output recorded alongside BENCH_6.json.
type loadReport struct {
	Workers         int         `json:"workers"`
	Idle            phaseReport `json:"idle"`
	DuringDiscovery phaseReport `json:"during_discovery"`
	// P99Ratio is during-discovery p99 over idle p99 — the acceptance
	// criterion holds it under 2.
	P99Ratio float64 `json:"p99_ratio"`
	JobState string  `json:"job_state"`
}

// runLoad measures /v1/predict latency under a worker fleet, idle and with a
// discovery job in flight. Worker fan-out goes through internal/exec's pool —
// the one sanctioned goroutine owner outside internal/api — so the harness
// obeys the same concurrency policy as the code it measures.
func runLoad(sys *anyopt.System, apiSrv *api.Server, workers int, dur time.Duration, out string) error {
	if sys.CurrentSnapshot() == nil {
		log.Printf("load: running initial discovery campaign")
		if err := sys.RunDiscovery(); err != nil {
			return err
		}
	}
	h := apiSrv.Handler()
	predictURL := "/v1/predict?config=1,4,6,9,12"
	if rec := hit(h, http.MethodGet, predictURL); rec.Code != http.StatusOK {
		return fmt.Errorf("load: predict warm-up failed: %d %s", rec.Code, rec.Body.String())
	}

	report := loadReport{Workers: workers}

	log.Printf("load: idle phase (%d workers, %v)", workers, dur)
	report.Idle = runPhase(h, predictURL, workers, dur, nil)

	log.Printf("load: discovery-in-flight phase")
	rec := hit(h, http.MethodPost, "/v1/discover")
	if rec.Code != http.StatusAccepted {
		return fmt.Errorf("load: starting discovery job: %d %s", rec.Code, rec.Body.String())
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &accepted); err != nil {
		return err
	}
	jobURL := "/v1/jobs/" + accepted.JobID
	jobRunning := func() bool {
		var got struct {
			State string `json:"state"`
		}
		jr := hit(h, http.MethodGet, jobURL)
		if err := json.Unmarshal(jr.Body.Bytes(), &got); err != nil {
			return false
		}
		report.JobState = got.State
		return got.State == "running"
	}
	report.DuringDiscovery = runPhase(h, predictURL, workers, dur, jobRunning)
	if report.Idle.P99us > 0 {
		report.P99Ratio = report.DuringDiscovery.P99us / report.Idle.P99us
	}

	// Drain the job so the report's final state is terminal.
	for jobRunning() {
		time.Sleep(10 * time.Millisecond)
	}

	enc, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	log.Printf("load: report -> %s (p99 idle %.0fus, during discovery %.0fus, ratio %.2f)",
		out, report.Idle.P99us, report.DuringDiscovery.P99us, report.P99Ratio)
	return os.WriteFile(out, enc, 0o644)
}

func hit(h http.Handler, method, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

// runPhase hammers target from the worker fleet for dur (or until keepGoing
// reports false) and aggregates latencies. keepGoing, when non-nil, is
// polled by worker 0 so a short discovery job ends the phase instead of
// silently measuring an idle server.
func runPhase(h http.Handler, target string, workers int, dur time.Duration, keepGoing func() bool) phaseReport {
	latencies := make([][]time.Duration, workers)
	stop := make(chan struct{})
	start := time.Now()
	deadline := start.Add(dur)
	pool := exec.New(workers)
	pool.ForEach(workers, func(w int) {
		var mine []time.Duration
		for i := 0; time.Now().Before(deadline); i++ {
			select {
			case <-stop:
				latencies[w] = mine
				return
			default:
			}
			if keepGoing != nil && w == 0 && i%64 == 63 {
				if !keepGoing() {
					close(stop)
					latencies[w] = mine
					return
				}
			}
			t0 := time.Now()
			rec := hit(h, http.MethodGet, target)
			if rec.Code == http.StatusOK {
				mine = append(mine, time.Since(t0))
			}
		}
		latencies[w] = mine
	})
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e3
	}
	return phaseReport{
		Requests: len(all),
		Seconds:  elapsed.Seconds(),
		QPS:      float64(len(all)) / elapsed.Seconds(),
		P50us:    pct(0.50),
		P90us:    pct(0.90),
		P99us:    pct(0.99),
	}
}
