// Command anyoptd serves the AnyOpt pipeline over a JSON HTTP API (see
// internal/api for the endpoint list):
//
//	anyoptd -listen 127.0.0.1:8080
//	curl -s localhost:8080/v1/testbed
//	curl -s -X POST localhost:8080/v1/discover
//	curl -s 'localhost:8080/v1/optimize?k=12'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"anyopt"
	"anyopt/internal/api"
	"anyopt/internal/campaign"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("anyoptd: ")
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		scale        = flag.String("scale", "test", "topology scale: test or paper")
		seed         = flag.Int64("seed", 1, "topology seed")
		campaignFile = flag.String("campaign", "", "preload discovery results from this snapshot")
	)
	flag.Parse()

	opts := anyopt.DefaultOptions()
	if *scale == "paper" {
		opts = anyopt.PaperScaleOptions()
	}
	opts.Topology.Seed = *seed
	opts.Testbed.Seed = *seed

	sys, err := anyopt.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *campaignFile != "" {
		f, err := os.Open(*campaignFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := campaign.Load(f, sys); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("campaign loaded from %s", *campaignFile)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           api.NewServer(sys).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving %v on http://%s (scale=%s seed=%d)", sys.Topo.ComputeStats(), *listen, *scale, *seed)
	log.Fatal(srv.ListenAndServe())
}
