// Command topogen generates a synthetic Internet topology, validates it, and
// either summarizes it or dumps it as JSON for inspection and external
// tooling.
//
//	topogen -scale test -seed 3           # summary
//	topogen -json > topo.json             # full dump
//	topogen -testbed                      # also deploy the Table 1 testbed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	var (
		scale   = flag.String("scale", "test", "topology scale: test, paper, or internet")
		seed    = flag.Int64("seed", 1, "generation seed")
		asJSON  = flag.Bool("json", false, "dump the topology as JSON to stdout")
		withTB  = flag.Bool("testbed", false, "deploy the Table 1 testbed before reporting")
		load    = flag.String("load", "", "load a topology from this JSON file instead of generating")
		distPct = flag.Bool("degrees", false, "print the AS degree distribution")
	)
	flag.Parse()

	start := time.Now()
	var topo *topology.Topology
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		topo, err = topology.ImportJSON(data)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		params := topology.TestParams()
		switch *scale {
		case "paper":
			params = topology.DefaultParams()
		case "internet":
			params = topology.InternetParams()
		}
		params.Seed = *seed
		var err error
		topo, err = topology.Generate(params)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *withTB {
		if _, err := testbed.New(topo, testbed.Options{Seed: *seed}); err != nil {
			log.Fatal(err)
		}
	}
	if err := topo.Validate(); err != nil {
		log.Fatalf("generated topology failed validation: %v", err)
	}

	if *asJSON {
		data, err := topo.ExportJSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Stdout.Write([]byte("\n"))
		return
	}

	fmt.Printf("ready in %v: %v\n", time.Since(start).Round(time.Millisecond), topo.ComputeStats())
	if *distPct {
		hist := map[int]int{}
		maxDeg := 0
		for asn := range topo.ASes {
			d := len(topo.LinksOf(asn))
			hist[d]++
			if d > maxDeg {
				maxDeg = d
			}
		}
		fmt.Println("degree distribution:")
		for d := 1; d <= maxDeg; d++ {
			if hist[d] > 0 {
				fmt.Printf("  %3d: %d\n", d, hist[d])
			}
		}
	}
}
