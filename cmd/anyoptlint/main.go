// Command anyoptlint enforces the repository's statically checked
// invariants: order-insensitive map iteration, seeded-entropy-only simulator
// packages, no copied sync primitives, no goroutines outside the worker
// pool, snapshot immutability, atomic access discipline, and the heap-escape
// budget on the hot-path packages. See internal/lint for the checks and
// policy table, and DESIGN.md §11 for the invariant model.
//
// Usage:
//
//	anyoptlint [-tags taglist]... [-json] [-escape baseline [-escape-write]] [packages]
//
// With no packages it lints ./... from the current module. -tags may repeat:
// each occurrence is one build-tag combination, and all tag sets are loaded
// in a single process sharing one module resolution (use -tags ” to include
// the untagged variant explicitly). -escape additionally runs the
// escape-analysis allocation gate against the named baseline file;
// -escape-write regenerates that file from the current tree instead of
// diffing. -json emits the machine-readable report on stdout.
//
// Exit status: 0 clean, 1 findings, 2 load or tool failure. A final
// "N findings in M packages" summary always goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anyopt/internal/lint"
	"anyopt/internal/lint/escape"
)

// tagSetsFlag collects repeated -tags occurrences, each one tag set.
type tagSetsFlag struct {
	sets [][]string
}

func (t *tagSetsFlag) String() string {
	var parts []string
	for _, s := range t.sets {
		parts = append(parts, strings.Join(s, ","))
	}
	return strings.Join(parts, " ")
}

func (t *tagSetsFlag) Set(v string) error {
	if v == "" {
		t.sets = append(t.sets, nil)
		return nil
	}
	t.sets = append(t.sets, strings.Split(v, ","))
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var tagSets tagSetsFlag
	flag.Var(&tagSets, "tags", "comma-separated build tags forming one tag set; repeatable, '' for the untagged set")
	jsonOut := flag.Bool("json", false, "emit the findings report as JSON on stdout")
	escapeBaseline := flag.String("escape", "", "run the escape-analysis allocation gate against this baseline file")
	escapeWrite := flag.Bool("escape-write", false, "regenerate the -escape baseline from the current tree and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anyoptlint [-tags taglist]... [-json] [-escape baseline [-escape-write]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *escapeWrite {
		if *escapeBaseline == "" {
			fmt.Fprintln(os.Stderr, "anyoptlint: -escape-write requires -escape <baseline>")
			return 2
		}
		return writeBaseline(*escapeBaseline)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader(".")
	pkgs, err := loader.LoadTagSets(tagSets.sets, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anyoptlint:", err)
		return 2
	}
	diags := (&lint.Runner{}).Run(pkgs)

	if *escapeBaseline != "" {
		escDiags, err := escapeGate(*escapeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anyoptlint:", err)
			return 2
		}
		diags = append(diags, escDiags...)
		lint.SortDiagnostics(diags)
	}
	diags = lint.DedupeDiagnostics(diags)

	findingPackages := countFindingPackages(diags)
	rep := lint.NewReport(diags, len(pkgs), findingPackages)
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "anyoptlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	fmt.Fprintf(os.Stderr, "anyoptlint: %d findings in %d packages (%d analyzed)\n",
		len(diags), findingPackages, len(pkgs))
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// escapeGate runs the allocation gate and converts regressions into
// diagnostics so they flow through the same text/JSON reporting.
func escapeGate(baselinePath string) ([]lint.Diagnostic, error) {
	findings, err := escape.Analyze(".", escape.DefaultPackages)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("opening escape baseline (run with -escape-write to create it): %w", err)
	}
	defer f.Close()
	base, err := escape.ParseBaseline(f)
	if err != nil {
		return nil, err
	}
	var diags []lint.Diagnostic
	for _, r := range escape.Diff(findings, base) {
		d := lint.Diagnostic{
			Check: "escape",
			Message: fmt.Sprintf("%s.%s: %s (%d sites, baseline allows %d); fix the allocation or regenerate with make escape-baseline",
				r.Pkg, r.Func, r.Msg, r.Have, r.Allowed),
		}
		d.Pos.Filename = r.File
		d.Pos.Line = r.Line
		d.Pos.Column = r.Col
		diags = append(diags, d)
	}
	return diags, nil
}

// writeBaseline regenerates the escape baseline from the current tree.
func writeBaseline(path string) int {
	findings, err := escape.Analyze(".", escape.DefaultPackages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anyoptlint:", err)
		return 2
	}
	counts := escape.Counts(findings)
	if err := os.WriteFile(path, escape.FormatBaseline(counts), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "anyoptlint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "anyoptlint: wrote %s: %d sites across %d packages\n",
		path, len(counts), len(escape.DefaultPackages))
	return 0
}

// countFindingPackages counts the distinct packages owning at least one
// finding, using each finding's source directory as the package identity
// (escape-gate findings may fall outside the loaded package set).
func countFindingPackages(diags []lint.Diagnostic) int {
	dirs := make(map[string]bool)
	for _, d := range diags {
		dirs[filepath.Dir(d.Pos.Filename)] = true
	}
	return len(dirs)
}
