// Command anyoptlint enforces the repository's determinism and concurrency
// invariants: order-insensitive map iteration, seeded-entropy-only simulator
// packages, no copied sync primitives, and no goroutines outside the worker
// pool. See internal/lint for the checks and policy table.
//
// Usage:
//
//	anyoptlint [-tags taglist] [packages]
//
// With no packages it lints ./... from the current module. The exit status
// is 1 when any diagnostic is produced, so `make lint` and CI fail on new
// violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anyopt/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. invariants)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anyoptlint [-tags taglist] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader(".")
	if *tags != "" {
		loader.BuildTags = strings.Split(*tags, ",")
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anyoptlint:", err)
		os.Exit(2)
	}
	diags := (&lint.Runner{}).Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "anyoptlint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
