// Command calibrate reports the model statistics that drive the paper's
// Figure 4 shapes, so the simulation parameters (race jitter, multipath and
// deviant fractions, hierarchy depth) can be tuned against the published
// numbers:
//
//   - Fig 4a: fraction of targets whose catchment flips when a provider
//     pair's announcement order is reversed (paper: 6–14%).
//   - Fig 4b: fraction of clients with a total provider-level order, naive
//     vs order-aware, for 3–6 providers (paper at 6: 78.3% naive, 89.2%
//     order-aware).
//   - Fig 4c: fraction with a total site-level order, flat-naive vs
//     two-level order-aware, up to 15 sites (paper: 15.3% vs 88.9%).
package main

import (
	"flag"
	"fmt"
	"log"

	"anyopt/internal/analysis"
	"anyopt/internal/core/discovery"
	"anyopt/internal/fault"
	"anyopt/internal/prof"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	var (
		scale      = flag.String("scale", "test", "topology scale: test or default")
		seed       = flag.Int64("seed", 1, "topology seed")
		fig4c      = flag.Bool("fig4c", false, "include the (slow) Figure 4c site-level sweep")
		workers    = flag.Int("workers", 0, "experiment executor workers (0 = ANYOPT_WORKERS or GOMAXPROCS)")
		faults     = flag.String("faults", "none", "fault-injection scenario: none, paper, or harsh")
		faultSeed  = flag.Int64("fault-seed", fault.SeedFromEnv(), "fault injection seed (default $"+fault.SeedEnv+" or 1)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	params := topology.TestParams()
	if *scale == "default" {
		params = topology.DefaultParams()
	}
	params.Seed = *seed
	topo, err := topology.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	tb, err := testbed.New(topo, testbed.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %v\n", topo.ComputeStats())

	dcfg := discovery.DefaultConfig()
	dcfg.Workers = *workers
	dcfg.Faults, err = fault.Scenario(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	d := discovery.New(tb, dcfg)
	reps := d.Representatives()

	// Fig 4a: catchment flip fraction per provider pair under order
	// reversal.
	providers := tb.TransitProviders()
	tab := analysis.NewTable("Fig 4a calibration: catchment flips on order reversal (paper: 6-14%)",
		"pair", "flipped%", "targets")
	var flips []float64
	for a := 0; a < len(providers); a++ {
		for b := a + 1; b < len(providers); b++ {
			ab := d.RunConfiguration([]int{reps[providers[a]], reps[providers[b]]})
			ba := d.RunConfiguration([]int{reps[providers[b]], reps[providers[a]]})
			flip, n := 0, 0
			for c, site := range ab {
				s2, ok := ba[c]
				if !ok {
					continue
				}
				n++
				if s2 != site {
					flip++
				}
			}
			f := 100 * float64(flip) / float64(n)
			flips = append(flips, f)
			tab.AddRow(fmt.Sprintf("%d-%d", a+1, b+1), f, n)
		}
	}
	fmt.Print(tab)
	fmt.Printf("flip%%: min %.1f mean %.1f max %.1f\n\n",
		analysis.Percentile(flips, 0), analysis.Mean(flips), analysis.Percentile(flips, 100))

	// Fig 4b: total-order fractions vs provider count.
	fmt.Println("Fig 4b calibration (paper at 6 providers: naive 78.3%, ordered 89.2%):")
	ordered, err := d.ProviderPrefs(reps)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := d.ProviderPrefsNaive(reps)
	if err != nil {
		log.Fatal(err)
	}
	items := ordered.Items()
	for n := 3; n <= len(items); n++ {
		sub := items[:n]
		fmt.Printf("  %d providers: naive %.1f%%  ordered %.1f%%\n",
			n, 100*naive.FracWithTotalOrder(sub), 100*ordered.FracWithTotalOrder(sub))
	}
	bestOrder, frac := ordered.BestAnnouncementOrder(6)
	fmt.Printf("  best announcement order %v → %.1f%%\n\n", bestOrder, 100*frac)

	reportFaults := func() {
		if err := d.Err(); err != nil {
			log.Fatal(err)
		}
		if dcfg.Faults.Enabled() {
			fmt.Printf("faults: scenario %q seed %d, %d events logged, %d sites quarantined\n",
				*faults, *faultSeed, len(d.FaultLog()), len(d.QuarantinedSites()))
		}
	}

	if !*fig4c {
		reportFaults()
		fmt.Println("(run with -fig4c for the site-level sweep)")
		// Plain return, not os.Exit: the deferred profile flush must run.
		return
	}

	// Fig 4c: site-level total orders, flat naive vs two-level ordered.
	fmt.Println("Fig 4c calibration (paper at 15 sites: naive 15.3%, two-level 88.9%):")
	allSites := make([]int, len(tb.Sites))
	for i, s := range tb.Sites {
		allSites[i] = s.ID
	}
	for _, n := range []int{6, 9, 12, 15} {
		flat, err := d.NaiveSitePrefs(allSites[:n])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d sites: flat-naive %.1f%%\n", n, 100*flat.FracWithTotalOrder(flat.Items()))
	}
	// Two-level: provider order × site prefs. A client has a two-level
	// total order when it has a provider total order and a total order
	// within every multi-site provider.
	twoLevelOK := 0
	provOrder, _ := ordered.BestAnnouncementOrder(6)
	clients := ordered.Clients()
	perProvider := map[topology.ASN]map[int64]bool{} // provider → clients with intra order
	for _, pASN := range providers {
		st, err := d.SitePrefs(pASN)
		if err != nil {
			log.Fatal(err)
		}
		ok := map[int64]bool{}
		for _, c := range st.Clients() {
			if st.Get(c).HasTotalOrder(st.Items()) {
				ok[int64(c)] = true
			}
		}
		perProvider[pASN] = ok
	}
	for _, c := range clients {
		if !ordered.Get(c).HasTotalOrder(provOrder) {
			continue
		}
		all := true
		for _, pASN := range providers {
			if len(tb.SitesOfTransit(pASN)) > 1 && !perProvider[pASN][int64(c)] {
				all = false
				break
			}
		}
		if all {
			twoLevelOK++
		}
	}
	fmt.Printf("  15 sites: two-level order-aware %.1f%%\n", 100*float64(twoLevelOK)/float64(len(clients)))
	reportFaults()
}
