// Command anyopt drives the AnyOpt pipeline from the shell: discover client
// preferences on the simulated testbed, predict configurations, search for
// the lowest-latency configuration, and evaluate peering links.
//
//	anyopt table1                     show the testbed (Table 1)
//	anyopt discover                   run the measurement campaign, print a summary
//	anyopt predict -config 1,3,5      predict a configuration and validate it
//	anyopt optimize -k 12             offline search + baselines
//	anyopt peers -k 12 -max 30        one-pass peering evaluation
//
// Global flags (before the subcommand): -scale test|paper|internet, -seed N,
// -workers N (experiment parallelism; also via ANYOPT_WORKERS, default
// GOMAXPROCS — worker count never changes results, only wall-clock).
//
// Chaos and recovery: -faults none|paper|harsh injects deterministic
// transport faults into the campaign (seed from -fault-seed, default
// ANYOPT_FAULT_SEED or 1); -checkpoint FILE journals completed experiments
// so a killed discover run resumes where it left off.
//
// Sharding: -shard i/n runs the i-th of n contiguous slices of the campaign
// schedule as an independent process, journaling to FILE.shard-i-of-n; once
// all shards finish, -shard merge/n folds the journals together and replays
// them into a campaign byte-identical to a single-process run. Requires
// -checkpoint and fault-free operation.
//
// Profiling: -cpuprofile FILE and -memprofile FILE write stdlib pprof
// profiles for the run (heap profile taken after a final GC on exit).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"anyopt"
	"anyopt/internal/analysis"
	"anyopt/internal/bgp"
	"anyopt/internal/campaign"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/experiments"
	"anyopt/internal/fault"
	"anyopt/internal/prof"
	"anyopt/internal/topology"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: anyopt [-scale test|paper|internet] [-seed N] [-workers N] [-faults SCENARIO] <command> [args]

commands:
  table1      print the testbed layout
  discover    run the full measurement campaign and summarize it
  predict     predict a configuration (-config 1,3,5) and validate by deployment
  optimize    find the best configuration (-k sites, 0 = any size; -budget subsets;
              -time-budget / -restarts route to the anytime solver)
  peers       one-pass peering evaluation on top of the optimum (-k, -max links)
  trace       explain a client's routing toward a configuration (-config, -client ASN)
  breakdown   count which BGP attribute decides each client's catchment (-config)
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("anyopt: ")
	scale := flag.String("scale", "test", "topology scale: test, paper, or internet")
	seed := flag.Int64("seed", 1, "topology seed")
	campaignFile := flag.String("campaign", "", "load discovery results from this snapshot instead of re-measuring")
	workers := flag.Int("workers", 0, "experiment executor workers (0 = ANYOPT_WORKERS or GOMAXPROCS)")
	faults := flag.String("faults", "none", "fault-injection scenario: none, paper, or harsh")
	faultSeed := flag.Int64("fault-seed", fault.SeedFromEnv(), "fault injection seed (default $"+fault.SeedEnv+" or 1)")
	checkpoint := flag.String("checkpoint", "", "journal completed experiments to this file; a rerun resumes from it")
	shardSpec := flag.String("shard", "", "run one campaign shard (i/n) or merge shard journals (merge/n); requires -checkpoint")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	env, err := experiments.NewEnv(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sys := env.Sys
	if *workers != 0 {
		sys.Disc.SetWorkers(*workers)
	}
	faultCfg, err := fault.Scenario(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	sys.Disc.Cfg.Faults = faultCfg
	var shard campaign.Shard
	if *shardSpec != "" {
		shard, err = campaign.ParseShard(*shardSpec)
		if err != nil {
			log.Fatal(err)
		}
		if cmd != "discover" {
			log.Fatal("-shard applies only to the discover command")
		}
		if *checkpoint == "" {
			log.Fatal("-shard requires -checkpoint BASE for the per-shard journals")
		}
		if faultCfg.Enabled() {
			log.Fatal("sharded campaigns must run fault-free: quarantine is cross-shard state")
		}
	}
	if *checkpoint != "" {
		path := *checkpoint
		if *shardSpec != "" && shard.Merge() {
			ck, n, err := campaign.MergeShardCheckpoints(*checkpoint, shard.Count)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("merged %d experiments from %d shard journals into %s\n", n, shard.Count, *checkpoint)
			sys.Disc.SetJournal(ck)
		} else {
			if *shardSpec != "" {
				path = campaign.ShardCheckpointPath(*checkpoint, shard.Index, shard.Count)
				total := discovery.CampaignExperiments(sys.TB, sys.Options().UseRTTHeuristic)
				lo, hi := discovery.ShardRange(total, shard.Index-1, shard.Count)
				sys.Disc.Cfg.ShardLo, sys.Disc.Cfg.ShardHi = lo, hi
				fmt.Printf("shard %d/%d: experiments %d-%d of %d, journal %s\n",
					shard.Index, shard.Count, lo, hi-1, total, path)
			}
			ck, err := campaign.NewCheckpoint(path)
			if err != nil {
				log.Fatal(err)
			}
			if n := ck.Len(); n > 0 {
				fmt.Printf("resuming: %d experiments already journaled in %s\n", n, path)
			}
			sys.Disc.SetJournal(ck)
		}
	}
	if *campaignFile != "" {
		f, err := os.Open(*campaignFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := campaign.Load(f, sys); err != nil {
			log.Fatal(err)
		}
		f.Close()
		env.MarkDiscovered()
		fmt.Printf("loaded campaign from %s\n", *campaignFile)
	}

	switch cmd {
	case "table1":
		fmt.Print(env.Table1())

	case "discover":
		fs := flag.NewFlagSet("discover", flag.ExitOnError)
		saveTo := fs.String("save", "", "write the campaign snapshot to this file")
		fs.Parse(args)
		if *shardSpec != "" && !shard.Merge() && *saveTo != "" {
			log.Fatalf("a worker shard's snapshot is partial; save from `-shard merge/%d` instead", shard.Count)
		}
		start := time.Now()
		if err := env.Discover(); err != nil {
			log.Fatal(err)
		}
		if err := sys.Disc.Err(); err != nil {
			log.Fatal(err)
		}
		if *shardSpec != "" && !shard.Merge() {
			// The worker's in-memory snapshot covers only its own slice of
			// the schedule; its real output is the journal. Merge reassembles
			// the campaign.
			fmt.Printf("shard %d/%d complete in %v: %d experiments journaled; merge with -shard merge/%d\n",
				shard.Index, shard.Count, time.Since(start).Round(time.Millisecond),
				sys.Disc.Cfg.ShardHi-sys.Disc.Cfg.ShardLo, shard.Count)
			return
		}
		if faultCfg.Enabled() {
			fmt.Printf("faults: scenario %q seed %d, %d events logged\n",
				*faults, *faultSeed, len(sys.Disc.FaultLog()))
			quarantined := sys.Disc.Quarantined()
			for _, id := range sys.Disc.QuarantinedSites() {
				fmt.Printf("  quarantined site %d: %s\n", id, quarantined[id])
			}
		}
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			if err != nil {
				log.Fatal(err)
			}
			if err := campaign.Save(f, sys); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("campaign saved to %s\n", *saveTo)
		}
		fmt.Printf("topology: %v\n", sys.Topo.ComputeStats())
		fmt.Printf("experiments: %d BGP runs, %d probes, %v wall time\n",
			sys.Experiments(), sys.Disc.ProbesSent, time.Since(start).Round(time.Millisecond))
		order, frac := sys.Pred.Providers.BestAnnouncementOrder(7)
		fmt.Printf("best announcement order: %v (%.1f%% of clients orderable)\n", order, 100*frac)
		tab := analysis.NewTable("per-site mean unicast RTT", "site", "name", "mean RTT")
		for _, s := range sys.TB.Sites {
			tab.AddRow(s.ID, s.Name, sys.RTT.MeanUnicast(s.ID))
		}
		fmt.Print(tab)

	case "predict":
		fs := flag.NewFlagSet("predict", flag.ExitOnError)
		cfgStr := fs.String("config", "", "comma-separated site IDs in announcement order")
		fs.Parse(args)
		cfg, err := parseConfig(*cfgStr)
		if err != nil {
			log.Fatal(err)
		}
		if err := env.Discover(); err != nil {
			log.Fatal(err)
		}
		predicted, err := sys.PredictCatchments(cfg)
		if err != nil {
			log.Fatal(err)
		}
		predMean, n, err := sys.PredictMeanRTT(cfg)
		if err != nil {
			log.Fatal(err)
		}
		measured, rtts := sys.MeasureConfiguration(cfg)
		acc, overlap := predict.Accuracy(predicted, measured)
		measMean, _ := predict.MeasuredMeanRTT(rtts)
		fmt.Printf("config %v\n", cfg)
		fmt.Printf("  predictable clients: %d (%.1f%%)\n", n, 100*sys.Pred.FracPredictable(cfg))
		fmt.Printf("  catchment accuracy vs deployment: %.1f%% over %d clients\n", 100*acc, overlap)
		fmt.Printf("  mean RTT: predicted %v, measured %v (rel err %.1f%%)\n",
			predMean.Round(10*time.Microsecond), measMean.Round(10*time.Microsecond),
			100*analysis.RelErr(float64(predMean), float64(measMean)))

	case "optimize":
		fs := flag.NewFlagSet("optimize", flag.ExitOnError)
		k := fs.Int("k", 12, "number of sites (0 = any size)")
		budget := fs.Int("budget", 0, "max subsets to evaluate (0 = all)")
		timeBudget := fs.Duration("time-budget", 0, "anytime solver wall-clock budget (0 = exact solver)")
		restarts := fs.Int("restarts", 1, "anytime solver parallel restarts")
		fs.Parse(args)
		if err := env.Discover(); err != nil {
			log.Fatal(err)
		}
		var opt anyopt.OptimizeResult
		var err error
		if *timeBudget > 0 || *restarts > 1 {
			opt, err = sys.OptimizeWith(anyopt.OptimizeOptions{
				K: *k, MaxSubsets: *budget, TimeBudget: *timeBudget, Restarts: *restarts,
			})
		} else {
			opt, err = sys.Optimize(*k, *budget)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimum: %v (predicted mean %v, %d subsets, %d orderable clients)\n",
			opt.Config, opt.PredictedMean.Round(10*time.Microsecond), opt.SubsetsEvaluated, opt.OrderableClients)
		if opt.Moves > 0 {
			fmt.Printf("anytime solver: %d moves accepted over %d candidate evals\n", opt.Moves, opt.Evals)
		}
		_, rtts := sys.MeasureConfiguration(opt.Config)
		mean, _ := predict.MeasuredMeanRTT(rtts)
		fmt.Printf("deployed mean: %v\n", mean.Round(10*time.Microsecond))
		if *k > 0 {
			greedy, err := sys.GreedyConfig(*k)
			if err != nil {
				log.Fatal(err)
			}
			_, gr := sys.MeasureConfiguration(greedy)
			gm, _ := predict.MeasuredMeanRTT(gr)
			fmt.Printf("greedy-%d baseline %v → deployed mean %v\n", *k, greedy, gm.Round(10*time.Microsecond))
		}

	case "peers":
		fs := flag.NewFlagSet("peers", flag.ExitOnError)
		k := fs.Int("k", 12, "transit-only configuration size")
		max := fs.Int("max", 0, "probe only the first N peering links (0 = all)")
		fs.Parse(args)
		if err := env.Discover(); err != nil {
			log.Fatal(err)
		}
		opt, err := sys.Optimize(*k, 0)
		if err != nil {
			log.Fatal(err)
		}
		peers := sys.AllPeerLinks()
		if *max > 0 && *max < len(peers) {
			peers = peers[:*max]
		}
		res := sys.OnePassPeering(opt.Config, peers)
		fmt.Printf("base config %v, baseline mean %v\n", opt.Config, res.BaselineMean.Round(10*time.Microsecond))
		fmt.Printf("peers probed %d: reachable %d, beneficial %d, included %d\n",
			len(res.Reports), res.ReachableCount(), res.BeneficialCount(), len(res.Included))
		fmt.Printf("estimated mean with included peers: %v\n", res.EstimatedMean.Round(10*time.Microsecond))

	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		cfgStr := fs.String("config", "", "comma-separated site IDs in announcement order")
		clientASN := fs.Int64("client", 0, "client AS number (0 = first target)")
		fs.Parse(args)
		cfg, err := parseConfig(*cfgStr)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := deploy(env, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tg, err := pickTarget(env, *clientASN)
		if err != nil {
			log.Fatal(err)
		}
		exp, ok := sim.Explain(0, tg)
		if !ok {
			log.Fatalf("client AS%d has no route to the prefix", tg.AS)
		}
		site := sys.TB.SiteByLink(exp.EntryLink)
		fmt.Printf("catchment: site %d (%s)\n%s", site.ID, site.Name, exp)

	case "breakdown":
		fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
		cfgStr := fs.String("config", "", "comma-separated site IDs in announcement order")
		fs.Parse(args)
		cfg, err := parseConfig(*cfgStr)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := deploy(env, cfg)
		if err != nil {
			log.Fatal(err)
		}
		bd := sim.DecisiveBreakdown(0, sys.Topo.Targets)
		type row struct {
			step bgp.DecisionStep
			n    int
		}
		var rows []row
		total := 0
		for step, n := range bd {
			rows = append(rows, row{step, n})
			total += n
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		fmt.Printf("decisive BGP attribute per client (config %v, %d clients):\n", cfg, total)
		for _, r := range rows {
			fmt.Printf("  %-28s %6d (%.1f%%)\n", r.step, r.n, 100*float64(r.n)/float64(total))
		}

	default:
		usage()
	}
}

// deploy announces cfg on a fresh simulation with the standard spacing.
func deploy(env *experiments.Env, cfg anyopt.Config) (*bgp.Sim, error) {
	if len(cfg) == 0 {
		return nil, fmt.Errorf("missing -config")
	}
	sim := bgp.New(env.Sys.Topo, bgp.DefaultConfig())
	dep := env.Sys.TB.NewDeployment(sim, 0)
	dep.AnnounceSites(cfg...)
	return sim, nil
}

// pickTarget resolves a client ASN (or the first target when 0).
func pickTarget(env *experiments.Env, asn int64) (topology.Target, error) {
	targets := env.Sys.Topo.Targets
	if asn == 0 {
		return targets[0], nil
	}
	for _, tg := range targets {
		if int64(tg.AS) == asn {
			return tg, nil
		}
	}
	return topology.Target{}, fmt.Errorf("AS%d is not a measurement target", asn)
}

func parseConfig(s string) (anyopt.Config, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing -config")
	}
	var cfg anyopt.Config
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad site id %q", part)
		}
		cfg = append(cfg, id)
	}
	return cfg, nil
}
