// Command benchjson reduces `go test -bench` output to a small JSON
// document suitable for checking into the repo and diffing across commits:
//
//	go test -run xxx -bench 'Campaign|Fig4a' -benchmem -json . | benchjson -out BENCH.json
//
// It accepts either the `go test -json` event stream or plain benchmark
// text on stdin, keeps every metric a benchmark reported (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units), and derives experiments/s
// for benchmarks that report an `experiments` metric. Output order follows
// input order, so the document is deterministic for a fixed bench run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// benchResult is one reduced benchmark line.
type benchResult struct {
	// Name is the benchmark's full name including sub-benchmarks, with the
	// trailing -GOMAXPROCS suffix split off into Procs.
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics holds every reported "value unit" pair, keyed by unit.
	Metrics map[string]float64 `json:"metrics"`
	// ExperimentsPerSec is derived from ns/op and the campaign benchmarks'
	// `experiments` metric: experiments / (ns_per_op / 1e9).
	ExperimentsPerSec float64 `json:"experiments_per_sec,omitempty"`
}

// testEvent is the subset of the `go test -json` event stream we care about.
type testEvent struct {
	Action string `json:"action"`
	Output string `json:"output"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "write the JSON document to this file (default stdout)")
	flag.Parse()

	var results []benchResult
	// The testing package prints a benchmark's name before running it and
	// its numbers after, so under `go test -json` the two halves arrive as
	// separate output events; pending holds a name awaiting its numbers.
	var pending string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// `go test -json` wraps each output line in an event; plain bench
		// output arrives as-is. Try the wrapper first.
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		fields := strings.Fields(line)
		if len(fields) == 1 && strings.HasPrefix(fields[0], "Benchmark") {
			pending = fields[0]
			continue
		}
		if pending != "" && len(fields) > 0 {
			if _, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
				line = pending + "\t" + line
			}
			pending = ""
		}
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	doc, err := json.MarshalIndent(struct {
		Benchmarks []benchResult `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBenchLine parses one testing-package benchmark result line:
//
//	BenchmarkName/sub=1-8   5   165514723 ns/op   62092074 B/op   16.96 flip_%
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Iterations: iters, Metrics: make(map[string]float64)}
	r.Name, r.Procs = splitProcs(fields[0])
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return benchResult{}, false
	}
	if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
		if exps, ok := r.Metrics["experiments"]; ok {
			r.ExperimentsPerSec = exps / (ns / 1e9)
		}
	}
	return r, true
}

// splitProcs splits the trailing -GOMAXPROCS suffix testing appends to
// benchmark names; a name with no numeric suffix is returned unchanged.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
