// Command benchjson reduces `go test -bench` output to a small JSON
// document suitable for checking into the repo and diffing across commits:
//
//	go test -run xxx -bench 'Campaign|Fig4a' -benchmem -json . | benchjson -out BENCH.json
//
// It accepts either the `go test -json` event stream or plain benchmark
// text on stdin, keeps every metric a benchmark reported (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units), and derives experiments/s
// for benchmarks that report an `experiments` metric. Output order follows
// input order, so the document is deterministic for a fixed bench run.
//
// Guard mode compares a checked-in document against its predecessor instead
// of reading stdin:
//
//	benchjson -guard BENCH_10.json
//
// finds the newest prior BENCH_<n>.json in the same directory that records
// BenchmarkDiscoveryCampaign, and fails (exit 1) when any of the current
// document's BenchmarkDiscoveryCampaign entries regressed ns/op by more
// than -max-regress percent against the same entry (name and GOMAXPROCS)
// there. `make bench-guard` wires this into `make check`, so a change that
// slows the campaign hot path past the tolerance fails CI with both
// numbers in the message.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one reduced benchmark line.
type benchResult struct {
	// Name is the benchmark's full name including sub-benchmarks, with the
	// trailing -GOMAXPROCS suffix split off into Procs.
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics holds every reported "value unit" pair, keyed by unit.
	Metrics map[string]float64 `json:"metrics"`
	// ExperimentsPerSec is derived from ns/op and the campaign benchmarks'
	// `experiments` metric: experiments / (ns_per_op / 1e9).
	ExperimentsPerSec float64 `json:"experiments_per_sec,omitempty"`
}

// testEvent is the subset of the `go test -json` event stream we care about.
type testEvent struct {
	Action string `json:"action"`
	Output string `json:"output"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "write the JSON document to this file (default stdout)")
	guard := flag.String("guard", "", "compare this BENCH document against its newest predecessor instead of reading stdin")
	maxRegress := flag.Float64("max-regress", 15, "guard mode: max tolerated ns/op regression, percent")
	flag.Parse()

	if *guard != "" {
		if err := runGuard(*guard, *maxRegress); err != nil {
			log.Fatal(err)
		}
		return
	}

	var results []benchResult
	// The testing package prints a benchmark's name before running it and
	// its numbers after, so under `go test -json` the two halves arrive as
	// separate output events; pending holds a name awaiting its numbers.
	var pending string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// `go test -json` wraps each output line in an event; plain bench
		// output arrives as-is. Try the wrapper first.
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		fields := strings.Fields(line)
		if len(fields) == 1 && strings.HasPrefix(fields[0], "Benchmark") {
			pending = fields[0]
			continue
		}
		if pending != "" && len(fields) > 0 {
			if _, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
				line = pending + "\t" + line
			}
			pending = ""
		}
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	doc, err := json.MarshalIndent(struct {
		Benchmarks []benchResult `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
}

// guardBench is the benchmark family guard mode compares. It is the
// campaign hot path: every store append, journal record, and probe
// aggregation of a full discovery run is on it.
const guardBench = "BenchmarkDiscoveryCampaign"

// benchDoc mirrors the JSON document this command writes.
type benchDoc struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

func loadDoc(path string) (benchDoc, error) {
	var doc benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// guardEntries extracts the guarded benchmark's results keyed by
// name+procs.
func guardEntries(doc benchDoc) map[string]benchResult {
	out := make(map[string]benchResult)
	for _, r := range doc.Benchmarks {
		if r.Name == guardBench || strings.HasPrefix(r.Name, guardBench+"/") {
			out[fmt.Sprintf("%s-%d", r.Name, r.Procs)] = r
		}
	}
	return out
}

// baselineFor finds the newest BENCH_<n>.json in cur's directory with a
// numeric suffix below cur's that records the guarded benchmark. Documents
// predating the benchmark are skipped rather than failed: the guard only
// bites once a baseline exists.
func baselineFor(cur string) (string, benchDoc, error) {
	dir := filepath.Dir(cur)
	curN, ok := benchSuffix(filepath.Base(cur))
	if !ok {
		return "", benchDoc{}, fmt.Errorf("%s is not named BENCH_<n>.json", cur)
	}
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", benchDoc{}, err
	}
	bestN := -1
	var bestPath string
	var bestDoc benchDoc
	for _, path := range names {
		n, ok := benchSuffix(filepath.Base(path))
		if !ok || n >= curN || n <= bestN {
			continue
		}
		doc, err := loadDoc(path)
		if err != nil {
			return "", benchDoc{}, err
		}
		if len(guardEntries(doc)) == 0 {
			continue
		}
		bestN, bestPath, bestDoc = n, path, doc
	}
	if bestN < 0 {
		return "", benchDoc{}, nil
	}
	return bestPath, bestDoc, nil
}

// benchSuffix parses the <n> of BENCH_<n>.json.
func benchSuffix(base string) (int, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
	if s == base || s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// runGuard fails when any guarded benchmark in cur regressed its ns/op by
// more than maxRegress percent against the newest prior document.
func runGuard(cur string, maxRegress float64) error {
	curDoc, err := loadDoc(cur)
	if err != nil {
		return err
	}
	curEntries := guardEntries(curDoc)
	if len(curEntries) == 0 {
		return fmt.Errorf("%s records no %s results to guard", cur, guardBench)
	}
	basePath, baseDoc, err := baselineFor(cur)
	if err != nil {
		return err
	}
	if basePath == "" {
		fmt.Printf("guard: no prior BENCH document records %s; nothing to compare\n", guardBench)
		return nil
	}
	baseEntries := guardEntries(baseDoc)
	keys := make([]string, 0, len(curEntries))
	for key := range curEntries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	checked := 0
	for _, key := range keys {
		curR := curEntries[key]
		baseR, ok := baseEntries[key]
		if !ok {
			continue // new sub-benchmark: no baseline yet
		}
		curNs, baseNs := curR.Metrics["ns/op"], baseR.Metrics["ns/op"]
		if curNs <= 0 || baseNs <= 0 {
			continue
		}
		checked++
		pct := (curNs - baseNs) / baseNs * 100
		if pct > maxRegress {
			return fmt.Errorf("%s regressed %.1f%% (limit %.0f%%): %.0f ns/op in %s vs %.0f ns/op in %s",
				key, pct, maxRegress, curNs, cur, baseNs, basePath)
		}
		fmt.Printf("guard: %s %+.1f%% vs %s (%.0f → %.0f ns/op) ok\n", key, pct, filepath.Base(basePath), baseNs, curNs)
	}
	if checked == 0 {
		return fmt.Errorf("no comparable %s entries between %s and %s", guardBench, cur, basePath)
	}
	return nil
}

// parseBenchLine parses one testing-package benchmark result line:
//
//	BenchmarkName/sub=1-8   5   165514723 ns/op   62092074 B/op   16.96 flip_%
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Iterations: iters, Metrics: make(map[string]float64)}
	r.Name, r.Procs = splitProcs(fields[0])
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return benchResult{}, false
	}
	if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
		if exps, ok := r.Metrics["experiments"]; ok {
			r.ExperimentsPerSec = exps / (ns / 1e9)
		}
	}
	return r, true
}

// splitProcs splits the trailing -GOMAXPROCS suffix testing appends to
// benchmark names; a name with no numeric suffix is returned unchanged.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
