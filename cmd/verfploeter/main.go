// Command verfploeter maps the catchments of a deployed anycast
// configuration the way the measurement tool of §3.1 does: it probes every
// target with the anycast source address, attributes each reply to the site
// (and exact ingress link) it returned through, and prints per-site
// catchment sizes, RTT statistics, and a regional breakdown.
//
//	verfploeter -config 1,4,6
//	verfploeter -config 1,4,6 -peers        # also enable all peering links
//	verfploeter -scale paper -config 1,4,6  # full-size client population
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"anyopt/internal/analysis"
	"anyopt/internal/core/discovery"
	"anyopt/internal/core/prefs"
	"anyopt/internal/experiments"
	"anyopt/internal/geo"
	"anyopt/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verfploeter: ")
	var (
		scale   = flag.String("scale", "test", "topology scale: test or paper")
		seed    = flag.Int64("seed", 1, "topology seed")
		cfgStr  = flag.String("config", "", "site IDs in announcement order (required)")
		peers   = flag.Bool("peers", false, "also announce every peering link")
		regions = flag.Bool("regions", true, "print the per-region breakdown")
	)
	flag.Parse()
	if *cfgStr == "" {
		log.Fatal("missing -config")
	}
	var cfg []int
	for _, part := range strings.Split(*cfgStr, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad site id %q", part)
		}
		cfg = append(cfg, id)
	}

	env, err := experiments.NewEnv(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sys := env.Sys

	start := time.Now()
	var obs map[prefs.Client]discovery.Observation
	if *peers {
		obs = sys.Disc.RunConfigurationWithPeers(cfg, sys.AllPeerLinks())
	} else {
		obs = sys.Disc.RunConfigurationWithPeers(cfg, nil)
	}
	fmt.Printf("probed %d targets in %v (%d probes)\n",
		len(sys.Topo.Targets), time.Since(start).Round(time.Millisecond), sys.Disc.ProbesSent)

	// Per-site rollup.
	type roll struct {
		n       int
		viaPeer int
		rtts    []float64
		regions map[string]int
	}
	rolls := map[int]*roll{}
	var overall []float64
	clients := make([]prefs.Client, 0, len(obs))
	for c := range obs {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients {
		o := obs[c]
		r := rolls[o.Site]
		if r == nil {
			r = &roll{regions: map[string]int{}}
			rolls[o.Site] = r
		}
		r.n++
		site := sys.TB.Site(o.Site)
		if o.Link != site.TransitLink {
			r.viaPeer++
		}
		if o.HasRTT {
			ms := float64(o.RTT) / 1e6
			r.rtts = append(r.rtts, ms)
			overall = append(overall, ms)
		}
		r.regions[geo.RegionOf(sys.Topo.AS(topology.ASN(c)).Coord)]++
	}

	ids := make([]int, 0, len(rolls))
	for id := range rolls {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return rolls[ids[i]].n > rolls[ids[j]].n })

	tab := analysis.NewTable(fmt.Sprintf("catchments for config %v (peers=%v)", cfg, *peers),
		"site", "name", "clients", "share %", "via peer", "median ms", "p90 ms")
	for _, id := range ids {
		r := rolls[id]
		tab.AddRow(id, sys.TB.Site(id).Name, r.n, 100*float64(r.n)/float64(len(obs)),
			r.viaPeer, analysis.Median(r.rtts), analysis.Percentile(r.rtts, 90))
	}
	fmt.Print(tab)
	fmt.Printf("overall: %d clients, median %.1f ms, mean %.1f ms, p90 %.1f ms\n",
		len(obs), analysis.Median(overall), analysis.Mean(overall), analysis.Percentile(overall, 90))

	if *regions {
		fmt.Println()
		rtab := analysis.NewTable("regional breakdown (clients per site)", append([]string{"site"}, geo.Regions...)...)
		for _, id := range ids {
			cells := []any{fmt.Sprintf("%d %s", id, sys.TB.Site(id).Name)}
			for _, rn := range geo.Regions {
				cells = append(cells, rolls[id].regions[rn])
			}
			rtab.AddRow(cells...)
		}
		fmt.Print(rtab)
	}
}
