// Command figures regenerates every table and figure of the paper's
// evaluation (§5) against the simulated testbed and prints them as text
// tables and CDF series.
//
//	go run ./cmd/figures                  # everything, test scale
//	go run ./cmd/figures -scale paper     # full-size client population
//	go run ./cmd/figures -only fig6,fig7  # a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"anyopt/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		scale   = flag.String("scale", "test", "topology scale: test or paper")
		seed    = flag.Int64("seed", 1, "topology seed")
		only    = flag.String("only", "", "comma-separated subset: table1,fig4a,fig4b,fig4c,fig5,fig6,fig7,sec45,repstab,stability,ablations")
		configs = flag.Int("configs", 38, "number of random configurations for Figure 5")
		churn   = flag.Float64("churn", 0.01, "inter-experiment churn fraction for Figure 5")
		k       = flag.Int("k", 12, "configuration size for Figures 6 and 7")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	enabled := func(name string) bool { return len(want) == 0 || want[name] }

	env, err := experiments.NewEnv(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# AnyOpt evaluation — scale=%s seed=%d\n", *scale, *seed)
	fmt.Printf("# topology: %v\n\n", env.Sys.Topo.ComputeStats())

	section := func(name string, run func() (string, error)) {
		if !enabled(name) {
			return
		}
		start := time.Now()
		out, err := run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v, %d experiments total]\n\n", name, time.Since(start).Round(time.Millisecond), env.Sys.Experiments())
	}

	section("table1", func() (string, error) { return env.Table1(), nil })
	section("fig4a", func() (string, error) { return env.Fig4a().Render(), nil })
	section("fig4b", func() (string, error) {
		r, err := env.Fig4b()
		return r.Render(), err
	})
	section("fig4c", func() (string, error) {
		r, err := env.Fig4c(nil)
		return r.Render(), err
	})
	section("fig5", func() (string, error) {
		r, err := env.Fig5(*configs, *churn)
		return r.Render(), err
	})
	section("fig6", func() (string, error) {
		r, err := env.Fig6(*k)
		return r.Render(), err
	})
	section("fig7", func() (string, error) {
		r, err := env.Fig7(*k)
		return r.Render(), err
	})
	section("sec45", func() (string, error) { return experiments.Sec45Schedule(), nil })
	section("repstab", func() (string, error) {
		r, err := env.RepresentativeStability()
		return r.Render(), err
	})
	section("stability", func() (string, error) {
		r, err := env.Stability(*k, 3, 0.04)
		return r.Render(), err
	})
	section("ablations", func() (string, error) {
		var b strings.Builder
		a1, err := env.AblationArrivalOrder()
		if err != nil {
			return "", err
		}
		b.WriteString(a1.Render())
		b.WriteString(env.AblationTwoLevel().Render())
		a3, err := env.AblationRTTHeuristic()
		if err != nil {
			return "", err
		}
		b.WriteString(a3.Render())
		a4, err := env.AblationSolvers(6)
		if err != nil {
			return "", err
		}
		b.WriteString(a4.Render())
		return b.String(), nil
	})
}
