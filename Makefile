GO ?= go

.PHONY: build test vet lint lint-json escape-baseline fmt race invariants chaos chaos-churn bench bench-json bench-guard splpo-bench loadbench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs anyoptlint (internal/lint), the repo's own invariant analyzer:
# one process covers the default build and the invariants-tagged variant
# (sharing the module load), plus the escape-analysis allocation gate over
# the hot-path packages against the checked-in baseline.
lint:
	$(GO) run ./cmd/anyoptlint -tags '' -tags invariants \
		-escape lint/escape_baseline.txt ./...

# lint-json is lint with the machine-readable report on stdout, for CI
# annotation tooling.
lint-json:
	$(GO) run ./cmd/anyoptlint -tags '' -tags invariants \
		-escape lint/escape_baseline.txt -json ./...

# escape-baseline regenerates lint/escape_baseline.txt from the current tree
# after a deliberate allocation change. Review the diff before committing.
escape-baseline:
	$(GO) run ./cmd/anyoptlint -escape lint/escape_baseline.txt -escape-write

# fmt fails if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race exercises the parallel experiment executor under the race detector;
# the determinism tests run campaigns at several worker counts.
race:
	$(GO) test -race ./...

# invariants runs the BGP suite with the runtime invariant checker compiled
# in: Gao-Rexford export audits, best-route re-verification, and the
# arrival-order tie log, including a full discovery campaign.
invariants:
	$(GO) test -tags=invariants ./internal/bgp/...

# chaos runs the fault-injection suite: the differential test (a faulted
# campaign must converge to the fault-free preference matrix modulo
# quarantined sites), failure-trace determinism, and checkpoint/resume.
chaos:
	$(GO) test -run 'Chaos|FaultsDisabled|Checkpoint|SaveLoadQuarantine|Pooled' \
		./internal/core/discovery/ ./internal/campaign/
	$(GO) test -race -run 'ForEachCtx|Retry|RunTimeout|Flush|SessionReset' \
		./internal/exec/ ./internal/orchestrator/

# chaos-churn runs the churn-reconciliation suite under the race detector:
# the differential convergence test (a healed churned campaign must be
# byte-identical to a from-scratch campaign on the post-churn topology, at
# several worker counts and under harsh fault injection), cone inference,
# the staleness/health state machine, and the anyoptd churn endpoints
# including checkpoint resume of half-finished repairs.
chaos-churn:
	$(GO) test -race -run 'Churn|Cone|Stale|Health|Repair|Reconcile' \
		./internal/reconcile/ ./internal/api/

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json runs the campaign-speed benchmarks plus the concurrent-API
# benchmarks (at 1 and 8 procs, lock-free vs the serialized seed
# architecture), the SPLPO solver head-to-heads, the churn-reconciler
# cone benchmarks (cone_frac is the acceptance headline: a single-link flap
# at paper scale must re-measure at most 10% of pairs), and the campaign
# storage/memory benchmarks (columnar vs nested bytes/client, plus the
# full-campaign memory ceiling at paper and — multi-minute — internet
# scale), reducing them all to one checked-in JSON document so perf
# changes are diffable across commits.
bench-json:
	( $(GO) test -run xxx -bench 'BenchmarkDiscoveryCampaign|BenchmarkFig4aOrderFlip' \
		-benchmem -json . ; \
	  $(GO) test -run xxx -bench 'BenchmarkPredictParallel|BenchmarkPredictSerialized|BenchmarkOptimizeParallel' \
		-benchmem -json -cpu 1,8 ./internal/api/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkSolver15|BenchmarkFeasible500|BenchmarkAnytime|BenchmarkFullEval500|BenchmarkDeltaMove500|BenchmarkWarmVsCold500' \
		-benchmem -json -benchtime 1x ./internal/core/splpo/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkStructuralConePaper|BenchmarkConeRepair' \
		-benchmem -json -benchtime 1x ./internal/reconcile/ ; \
	  ANYOPT_BENCH_INTERNET=1 $(GO) test -run xxx -bench 'BenchmarkCampaignStorage|BenchmarkCampaignMemory' \
		-benchmem -json -benchtime 1x -timeout 30m . ) \
		| $(GO) run ./cmd/benchjson -out BENCH_10.json

# bench-guard fails when the checked-in BENCH document shows the campaign
# hot path (BenchmarkDiscoveryCampaign) more than 15% slower than the
# newest prior BENCH document. Cheap (no benchmarks run), so it rides
# `make check`; refresh the document with bench-json after a deliberate
# perf change.
bench-guard:
	$(GO) run ./cmd/benchjson -guard BENCH_10.json

# splpo-bench runs just the solver head-to-heads (exhaustive vs the old
# bitmask LocalSearch vs the anytime solver, plus the delta-vs-full move
# cost and warm-vs-cold reoptimization) with human-readable output.
splpo-bench:
	$(GO) test -run xxx -bench 'BenchmarkSolver15|BenchmarkFeasible500|BenchmarkAnytime|BenchmarkFullEval500|BenchmarkDeltaMove500|BenchmarkWarmVsCold500' \
		-benchmem -benchtime 1x ./internal/core/splpo/

# loadbench runs the anyoptd load harness — predict QPS and latency
# percentiles idle vs with a discovery job in flight — and records the
# report next to the benchmark JSON.
loadbench:
	$(GO) run ./cmd/anyoptd -load -load-workers 8 -load-duration 3s -load-out LOADBENCH_6.json
	@cat LOADBENCH_6.json

# check is the CI gate: formatting, static analysis, the full suite, the
# race pass, the invariant-audited BGP suite, the chaos suites, and the
# benchmark regression guard over the checked-in BENCH document.
check: fmt vet lint test race invariants chaos chaos-churn bench-guard
