GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel experiment executor under the race detector;
# the determinism tests run campaigns at several worker counts.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# check is the CI gate: static analysis, the full suite, and the race pass.
check: vet test race
