// Loadbalance demonstrates the Appendix B extension of the optimization
// model: minimizing latency *subject to per-site load caps*. Each client
// carries a demand (here: heavier in a few metro regions, as real query
// volume is), popular sites get capacity limits, and the optimizer must
// find the lowest-latency configuration that still balances the load.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"sort"

	"anyopt"
)

func main() {
	log.SetFlags(0)

	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}

	// Demand model: clients in the northern hemisphere's busy band
	// (30°–60°N) generate 4× the query volume.
	loads := map[anyopt.Client]float64{}
	var total float64
	for _, tg := range sys.Topo.Targets {
		l := 1.0
		if as := sys.Topo.AS(tg.AS); as.Coord.Lat > 30 && as.Coord.Lat < 60 {
			l = 4
		}
		loads[anyopt.Client(tg.AS)] = l
		total += l
	}
	fmt.Printf("total demand %.0f across %d clients\n", total, len(loads))

	// Unconstrained optimum concentrates load on popular sites.
	const k = 8
	free, err := sys.OptimizeLoadAware(k, 0, loads, nil)
	if err != nil {
		log.Fatal(err)
	}
	freeLoads, err := sys.PredictSiteLoads(free.Config, loads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunconstrained optimum %v (predicted mean %v)\n", free.Config, free.PredictedMean.Round(100_000))
	printLoads(sys, freeLoads)

	// Tighten a uniform per-site cap until the problem becomes infeasible:
	// load is shaped by client preferences, not assigned by the operator, so
	// below some point no subset of sites balances it.
	var capped anyopt.OptimizeResult
	capFrac := 0.0
	for _, frac := range []float64{0.34, 0.30, 0.26, 0.22, 0.18} {
		caps := map[int]float64{}
		for _, s := range sys.TB.Sites {
			caps[s.ID] = frac * total
		}
		res, err := sys.OptimizeLoadAware(k, 0, loads, caps)
		if err != nil {
			fmt.Printf("\ncap ≤%.0f%%: infeasible — no %d-site configuration balances the load that far\n", frac*100, k)
			break
		}
		capped, capFrac = res, frac
		fmt.Printf("\ncap ≤%.0f%%: optimum %v (predicted mean %v)\n",
			frac*100, res.Config, res.PredictedMean.Round(100_000))
	}
	if capFrac == 0 {
		log.Fatal("even the loosest cap was infeasible")
	}
	cappedLoads, err := sys.PredictSiteLoads(capped.Config, loads)
	if err != nil {
		log.Fatal(err)
	}
	printLoads(sys, cappedLoads)

	fmt.Printf("\nprice of balance: %+.1fms mean latency for a ≤%.0f%% per-site cap\n",
		float64(capped.PredictedMean-free.PredictedMean)/1e6, capFrac*100)
}

func printLoads(sys *anyopt.System, loads map[int]float64) {
	var ids []int
	var total float64
	for id, l := range loads {
		ids = append(ids, id)
		total += l
	}
	sort.Slice(ids, func(i, j int) bool { return loads[ids[i]] > loads[ids[j]] })
	for _, id := range ids {
		fmt.Printf("  site %2d %-22s %6.0f (%.0f%%)\n",
			id, sys.TB.Site(id).Name, loads[id], 100*loads[id]/total)
	}
}
