// Peering runs the §4.4 / §5.4 campaign: starting from the optimized
// transit-only configuration, probe each of the testbed's settlement-free
// peering links one at a time, identify the beneficial ones, and compare
// three deployments — transit-only AnyOpt, AnyOpt plus the one-pass
// heuristic's beneficial peers, and AnyOpt plus all peers.
//
//	go run ./examples/peering
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"anyopt"
	"anyopt/internal/core/prefs"
)

func main() {
	log.SetFlags(0)

	sys, err := anyopt.New(anyopt.PaperScaleOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}

	// Transit-only optimum (12 sites, as in §5.3).
	opt, err := sys.Optimize(12, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transit-only AnyOpt config: %v\n", opt.Config)

	// One-pass campaign over every peering link.
	peers := sys.AllPeerLinks()
	fmt.Printf("probing %d peering links one at a time...\n", len(peers))
	res := sys.OnePassPeering(opt.Config, peers)

	fmt.Printf("baseline mean RTT: %.1fms\n", ms(res.BaselineMean))
	fmt.Printf("reachable peers: %d/%d, beneficial: %d, included by one-pass: %d\n",
		res.ReachableCount(), len(peers), res.BeneficialCount(), len(res.Included))

	// Catchment-size distribution (Figure 7a's shape).
	sizes := make([]int, 0, len(res.Reports))
	for _, r := range res.Reports {
		sizes = append(sizes, len(r.Catchment))
	}
	sort.Ints(sizes)
	fmt.Printf("peer catchment sizes: median %d, p90 %d, max %d (of %d targets)\n",
		sizes[len(sizes)/2], sizes[len(sizes)*9/10], sizes[len(sizes)-1], len(sys.Topo.Targets))

	// Deploy the three configurations of Figure 7c.
	meanOf := func(rtts map[prefs.Client]time.Duration) float64 {
		var s float64
		for _, d := range rtts {
			s += float64(d)
		}
		return s / float64(len(rtts)) / 1e6
	}
	obsBenefit := sys.Disc.RunConfigurationWithPeers(opt.Config, res.Included)
	obsAll := sys.Disc.RunConfigurationWithPeers(opt.Config, peers)
	benefit := map[prefs.Client]time.Duration{}
	all := map[prefs.Client]time.Duration{}
	for c, o := range obsBenefit {
		if o.HasRTT {
			benefit[c] = o.RTT
		}
	}
	for c, o := range obsAll {
		if o.HasRTT {
			all[c] = o.RTT
		}
	}
	fmt.Printf("\nFigure 7c comparison (mean client RTT):\n")
	fmt.Printf("  AnyOpt (transit only):     %.1fms\n", ms(res.BaselineMean))
	fmt.Printf("  AnyOpt + beneficial peers: %.1fms\n", meanOf(benefit))
	fmt.Printf("  AnyOpt + all peers:        %.1fms\n", meanOf(all))
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
