// Maintenance plays out the operational scenario that motivates AnyOpt (§1:
// anycast management "requires expert knowledge and continuous intervention
// in response to BGP path changes, regular maintenance, or DDoS attacks"):
// a site's transit link goes down for maintenance, catchments shift, and the
// operator uses the saved measurement campaign to re-optimize the remaining
// sites offline — no new BGP experiments needed.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"
	"time"

	"anyopt"
	"anyopt/internal/bgp"
	"anyopt/internal/core/predict"
)

func main() {
	log.SetFlags(0)

	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}

	// Deploy the 12-site optimum.
	opt, err := sys.Optimize(12, 0)
	if err != nil {
		log.Fatal(err)
	}
	sim := bgp.New(sys.Topo, bgp.DefaultConfig())
	dep := sys.TB.NewDeployment(sim, 0)
	dep.AnnounceSites(opt.Config...)
	before := sim.CatchmentMap(0, sys.Topo.Targets)
	fmt.Printf("deployed %v\n", opt.Config)

	// The busiest site goes into maintenance: its transit link fails.
	counts := map[int]int{}
	for _, link := range before {
		counts[sys.TB.SiteByLink(link).ID]++
	}
	busiest, busiestN := 0, 0
	for id, n := range counts {
		if n > busiestN {
			busiest, busiestN = id, n
		}
	}
	site := sys.TB.Site(busiest)
	fmt.Printf("maintenance: site %d (%s) with %d clients (%.0f%%) loses its transit link\n",
		busiest, site.Name, busiestN, 100*float64(busiestN)/float64(len(before)))

	sim.FailLink(site.TransitLink)
	sim.Converge()
	after := sim.CatchmentMap(0, sys.Topo.Targets)
	moved, lost := 0, 0
	for asn, link := range before {
		newLink, ok := after[asn]
		switch {
		case !ok:
			lost++
		case newLink != link:
			moved++
		}
	}
	fmt.Printf("after failover: %d clients moved, %d unreachable (BGP reconverged)\n", moved, lost)

	// Offline re-optimization over the remaining sites, straight from the
	// existing campaign — no new BGP experiments.
	reopt, err := sys.OptimizeExcluding(0, 0, busiest)
	if err != nil {
		log.Fatal(err)
	}
	bestCfg, bestMean := reopt.Config, reopt.PredictedMean
	fmt.Printf("re-optimized without site %d: %v (predicted mean %v)\n",
		busiest, bestCfg, bestMean.Round(100*time.Microsecond))

	// Deploy the replacement and compare measured means.
	_, rttsOld := sys.MeasureConfiguration(withoutSite(opt.Config, busiest))
	_, rttsNew := sys.MeasureConfiguration(bestCfg)
	oldMean, _ := predict.MeasuredMeanRTT(rttsOld)
	newMean, _ := predict.MeasuredMeanRTT(rttsNew)
	fmt.Printf("measured mean: degraded config %v vs re-optimized %v\n",
		oldMean.Round(100*time.Microsecond), newMean.Round(100*time.Microsecond))
	if newMean <= oldMean {
		fmt.Println("re-optimization recovered the maintenance loss without new measurements")
	}
}

func containsSite(cfg anyopt.Config, id int) bool {
	for _, s := range cfg {
		if s == id {
			return true
		}
	}
	return false
}

func withoutSite(cfg anyopt.Config, id int) anyopt.Config {
	var out anyopt.Config
	for _, s := range cfg {
		if s != id {
			out = append(out, s)
		}
	}
	return out
}
