// Stability reproduces the §6 "Stability Analysis": deploy the
// AnyOpt-optimized configuration, then re-measure it weekly while the
// Internet drifts underneath (routing-policy churn, router swaps, carrier
// path changes). The paper's three-week January 2021 study found >90% of
// catchments unchanged and a stable mean RTT; this example runs the same
// protocol against simulated churn.
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"
	"time"

	"anyopt"
	"anyopt/internal/topology"
)

func main() {
	log.SetFlags(0)

	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}
	opt, err := sys.Optimize(12, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed configuration: %v (predicted mean %v)\n",
		opt.Config, opt.PredictedMean.Round(100*time.Microsecond))

	base, baseRTTs := sys.MeasureConfiguration(opt.Config)
	fmt.Printf("week 0: %d catchments measured, mean RTT %.1fms\n",
		len(base), meanMs(baseRTTs))

	// Weekly churn: a few percent of ASes change policy or hardware, a few
	// links drift.
	const churnPerWeek = 0.04
	for week := 1; week <= 3; week++ {
		st := topology.Churn(sys.Topo, churnPerWeek, int64(week))
		catch, rtts := sys.MeasureConfiguration(opt.Config)

		same, n := 0, 0
		for c, s0 := range base {
			if s1, ok := catch[c]; ok {
				n++
				if s0 == s1 {
					same++
				}
			}
		}
		fmt.Printf("week %d: churn {policy:%d routers:%d links:%d} → %.1f%% catchments unchanged, mean RTT %.1fms\n",
			week, st.PolicyChanges, st.RouterSwaps, st.DelayShifts,
			100*float64(same)/float64(n), meanMs(rtts))
	}
	fmt.Println("\npaper (§6): >90% of catchments unchanged and stable mean RTT over three weeks")
}

func meanMs[K comparable, D ~int64](m map[K]D) float64 {
	if len(m) == 0 {
		return 0
	}
	var s float64
	for _, d := range m {
		s += float64(d)
	}
	return s / float64(len(m)) / 1e6
}
