// Dnscloud models the configuration problem that motivates AnyOpt (§2.2,
// §4.5): an authoritative-DNS anycast cloud in the style of Akamai DNS, with
// many more sites and transit providers than the 15-site testbed. At this
// scale intra-AS pairwise experiments are infeasible, so discovery uses the
// §4.3 RTT heuristic for site-level preferences, and the offline search uses
// local search instead of exhaustive enumeration.
//
// The example also prints the §4.5 measurement schedule for the paper's
// 500-site / 20-transit estimate of the production system.
//
//	go run ./examples/dnscloud
package main

import (
	"fmt"
	"log"

	"anyopt"
	"anyopt/internal/core/discovery"
	"anyopt/internal/testbed"
	"anyopt/internal/topology"
)

func main() {
	log.SetFlags(0)

	// A larger backbone: 12 tier-1 providers, deeper transit mesh.
	params := topology.TestParams()
	params.NumTier1 = 12
	params.NumTransit = 60
	params.NumStub = 500
	params.Seed = 11

	// An anycast cloud of 36 sites, three per provider, at that provider's
	// busiest PoPs, declared as a custom site plan.
	topo, err := topology.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	var sites []testbed.SiteSpec
	for _, t1 := range topo.Tier1s() {
		for p := 0; p < 3 && p < len(t1.PoPs); p++ {
			sites = append(sites, testbed.SiteSpec{
				City:    t1.PoPs[p].City,
				Transit: t1.Name,
				Peers:   0, // transit-only cloud
			})
		}
	}

	opts := anyopt.Options{
		Topology:        params,
		Testbed:         testbed.Options{Sites: sites, Seed: 11},
		Discovery:       discovery.DefaultConfig(),
		UseRTTHeuristic: true, // §4.3: no intra-AS experiments at this scale
	}
	sys, err := anyopt.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anycast cloud: %d sites across %d transit providers\n",
		len(sys.TB.Sites), len(sys.TB.TransitProviders()))

	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d BGP experiments (vs %d for flat pairwise over %d sites)\n",
		sys.Experiments(), len(sites)*(len(sites)-1), len(sites))

	// Assign the cloud a delegation-set-sized subset: the 18 best sites.
	const k = 18
	opt, err := sys.Optimize(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := sys.GreedyConfig(k)
	if err != nil {
		log.Fatal(err)
	}
	_, optRTTs := sys.MeasureConfiguration(opt.Config)
	_, gRTTs := sys.MeasureConfiguration(greedy)
	fmt.Printf("best %d-site cloud (local search, predicted %v):\n  %v\n",
		k, opt.PredictedMean.Round(100_000), siteNames(sys, opt.Config))
	fmt.Printf("measured mean RTT: anyopt %.1fms vs greedy %.1fms\n",
		meanMs(optRTTs), meanMs(gRTTs))

	// §4.5: the wall-clock schedule for the production-scale system.
	plan := discovery.PlanTransitOnly(500, 20, 4, true)
	fmt.Printf("\n§4.5 schedule for 500 sites / 20 transits / 4 parallel prefixes:\n")
	fmt.Printf("  %d singleton experiments → %.0f h (%.1f days)\n",
		plan.SingletonExperiments, plan.SingletonHours(), plan.SingletonHours()/24)
	fmt.Printf("  %d pairwise experiments  → %.0f h (%.1f days)\n",
		plan.PairwiseExperiments, plan.PairwiseHours(), plan.PairwiseHours()/24)
	fmt.Printf("  total ≈ %.1f days: feasible as a monthly campaign\n", plan.TotalDays())
}

func siteNames(sys *anyopt.System, cfg anyopt.Config) []string {
	out := make([]string, len(cfg))
	for i, id := range cfg {
		out[i] = sys.TB.Site(id).Name
	}
	return out
}

func meanMs[K comparable, D ~int64](m map[K]D) float64 {
	if len(m) == 0 {
		return 0
	}
	var s float64
	for _, d := range m {
		s += float64(d)
	}
	return s / float64(len(m)) / 1e6
}
