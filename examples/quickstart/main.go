// Quickstart: build the paper's 15-site testbed on a synthetic Internet, run
// the full AnyOpt discovery campaign, predict a configuration's catchments,
// and find the lowest-latency 12-site configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anyopt"
)

func main() {
	log.SetFlags(0)

	// 1. Synthetic Internet + Table 1 testbed (15 sites, 6 tier-1 transits,
	//    104 peering links).
	sys, err := anyopt.New(anyopt.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %v\n", sys.Topo.ComputeStats())
	fmt.Printf("testbed: %d sites, %d transit providers, %d peering links\n",
		len(sys.TB.Sites), len(sys.TB.TransitProviders()), sys.TB.PeerLinkCount())

	// 2. Discovery: singleton RTT experiments + order-controlled pairwise
	//    preference elicitation (§3, §4.3).
	if err := sys.RunDiscovery(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d BGP experiments, %d probes\n",
		sys.Experiments(), sys.Disc.ProbesSent)

	// 3. Predict a configuration and validate against a real deployment.
	cfg := anyopt.Config{1, 3, 4, 5, 6, 10} // one site per transit provider
	predicted, err := sys.PredictCatchments(cfg)
	if err != nil {
		log.Fatal(err)
	}
	predMean, n, err := sys.PredictMeanRTT(cfg)
	if err != nil {
		log.Fatal(err)
	}
	measured, rtts := sys.MeasureConfiguration(cfg)
	match, overlap := 0, 0
	for c, p := range predicted {
		if m, ok := measured[c]; ok {
			overlap++
			if p == m {
				match++
			}
		}
	}
	var measMean float64
	for _, d := range rtts {
		measMean += float64(d)
	}
	measMean /= float64(len(rtts))
	fmt.Printf("config %v:\n", cfg)
	fmt.Printf("  catchment prediction accuracy: %.1f%% over %d clients\n",
		100*float64(match)/float64(overlap), overlap)
	fmt.Printf("  mean RTT: predicted %v for %d clients, measured %.1fms\n",
		predMean.Round(100_000), n, measMean/1e6)

	// 4. Offline optimization: best 12-site configuration (§5.3).
	opt, err := sys.Optimize(12, 0)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := sys.GreedyConfig(12)
	if err != nil {
		log.Fatal(err)
	}
	_, optRTTs := sys.MeasureConfiguration(opt.Config)
	_, greedyRTTs := sys.MeasureConfiguration(greedy)
	fmt.Printf("optimization over %d subsets, %d orderable clients:\n",
		opt.SubsetsEvaluated, opt.OrderableClients)
	fmt.Printf("  AnyOpt-12 %v → measured mean %.1fms\n", opt.Config, meanMs(optRTTs))
	fmt.Printf("  Greedy-12 %v → measured mean %.1fms\n", greedy, meanMs(greedyRTTs))
}

func meanMs[K comparable, D ~int64](m map[K]D) float64 {
	if len(m) == 0 {
		return 0
	}
	var s float64
	for _, d := range m {
		s += float64(d)
	}
	return s / float64(len(m)) / 1e6
}
