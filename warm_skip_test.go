package anyopt

// Warm reoptimization across skipped snapshot generations: the reconciler can
// publish several patched generations between optimizer runs (gen 3 → 7), so
// the warm path must diff rows against whatever generation it last saw — and
// fall back to a cold restart on any population-shape change — but never
// reuse stale delta state.

import (
	"testing"
	"time"

	"anyopt/internal/core/discovery"
	"anyopt/internal/core/predict"
	"anyopt/internal/core/prefs"
)

// republish installs the snapshot's own campaign again n times, advancing the
// generation with zero row churn.
func republish(sys *System, n int) *Snapshot {
	snap := sys.CurrentSnapshot()
	for i := 0; i < n; i++ {
		snap = sys.InstallCampaign(snap.Pred, snap.RTT, snap.AnnOrder, snap.Experiments, snap.Quarantined)
	}
	return snap
}

func TestWarmOptimizerSkippedGenerations(t *testing.T) {
	// A private system: this test republishes perturbed campaigns and must
	// not pollute the shared fixture.
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	opts := OptimizeOptions{K: 6, TimeBudget: time.Second}

	w := NewWarmOptimizer()
	base, _, err := w.Reoptimize(sys.CurrentSnapshot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	startGen := w.Gen()

	// Jump several identical generations at once: the warm diff must see zero
	// changed rows and keep the optimum, never treating the gap itself as
	// churn.
	snap := republish(sys, 4)
	if snap.Gen < startGen+4 {
		t.Fatalf("gen %d, want >= %d", snap.Gen, startGen+4)
	}
	res, raw, err := w.Reoptimize(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Patched != 0 {
		t.Errorf("identical campaign republished %d gens ahead patched %d clients", snap.Gen-startGen, raw.Patched)
	}
	if res.PredictedMean != base.PredictedMean {
		t.Errorf("skip over identical gens moved the optimum: %v vs %v", res.PredictedMean, base.PredictedMean)
	}

	// Perturb one client's RTT rows, again skipping generations between
	// optimizer runs. The warm diff must patch exactly the changed client and
	// land on the same optimum a cold solver finds on the new snapshot.
	export := snap.RTT.Export()
	var victim prefs.Client
	for _, row := range export {
		for c := range row {
			if c > victim {
				victim = c
			}
		}
	}
	for site := range export {
		if _, ok := export[site][victim]; ok {
			export[site][victim] += 40_000_000 // +40ms
		}
	}
	newRTT := discovery.ImportRTTTable(export)
	newPred := &predict.Predictor{
		TB:              snap.Pred.TB,
		Providers:       snap.Pred.Providers,
		Sites:           snap.Pred.Sites,
		RTT:             newRTT,
		UseRTTHeuristic: snap.Pred.UseRTTHeuristic,
	}
	sys.InstallCampaign(newPred, newRTT, snap.AnnOrder, snap.Experiments, snap.Quarantined)
	snap2 := republish(sys, 2) // skip two more identical gens on top
	res2, raw2, err := w.Reoptimize(snap2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw2.Patched == 0 {
		t.Error("perturbed RTT row not detected across skipped generations")
	}
	cold, _, err := NewWarmOptimizer().Reoptimize(snap2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PredictedMean != cold.PredictedMean {
		t.Errorf("warm across skipped gens diverged from cold: %v vs %v", res2.PredictedMean, cold.PredictedMean)
	}

	// Population-shape change (a client disappears from the provider store):
	// the row diff is meaningless, so the warm path must cold-restart — and
	// still match a from-scratch solve — rather than reuse stale delta state.
	empty, err := prefs.NewStore(snap2.Pred.Providers.Items())
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := snap2.Pred.Providers.PatchClients(empty, func(c prefs.Client) bool { return c == victim })
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Clients()) != len(snap2.Pred.Providers.Clients())-1 {
		t.Fatalf("victim client %d not dropped from provider store", victim)
	}
	shrunkPred := &predict.Predictor{
		TB:              snap2.Pred.TB,
		Providers:       shrunk,
		Sites:           snap2.Pred.Sites,
		RTT:             snap2.RTT,
		UseRTTHeuristic: snap2.Pred.UseRTTHeuristic,
	}
	snap3 := sys.InstallCampaign(shrunkPred, snap2.RTT, snap2.AnnOrder, snap2.Experiments, snap2.Quarantined)
	res3, raw3, err := w.Reoptimize(snap3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw3.Patched != 0 {
		t.Errorf("population-shape change took the incremental path (%d patched)", raw3.Patched)
	}
	cold3, _, err := NewWarmOptimizer().Reoptimize(snap3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res3.PredictedMean != cold3.PredictedMean {
		t.Errorf("cold fallback diverged from from-scratch solve: %v vs %v", res3.PredictedMean, cold3.PredictedMean)
	}
	if w.Gen() != snap3.Gen {
		t.Errorf("warm gen %d, want %d", w.Gen(), snap3.Gen)
	}
}
